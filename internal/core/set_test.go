package core

import (
	"math/rand"
	"slices"
	"testing"
)

// TestAnswerSetAgainstMap drives an answerSet and a reference map with
// the same random operation stream, crossing the packed→bitmap spill
// boundary many times, and checks Has/Len/AppendTo agree throughout.
func TestAnswerSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s answerSet
	ref := map[int32]bool{}
	for op := 0; op < 20000; op++ {
		h := int32(rng.Intn(200))
		switch rng.Intn(3) {
		case 0, 1: // bias toward growth so the set spills
			if got, want := s.Add(h), !ref[h]; got != want {
				t.Fatalf("op %d: Add(%d) = %v, want %v", op, h, got, want)
			}
			ref[h] = true
		case 2:
			if got, want := s.Remove(h), ref[h]; got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", op, h, got, want)
			}
			delete(ref, h)
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, s.Len(), len(ref))
		}
		if h2 := int32(rng.Intn(200)); s.Has(h2) != ref[h2] {
			t.Fatalf("op %d: Has(%d) = %v, want %v", op, h2, s.Has(h2), ref[h2])
		}
	}
	got := s.AppendTo(nil)
	want := make([]int32, 0, len(ref))
	for h := range ref {
		want = append(want, h)
	}
	slices.Sort(got)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("AppendTo = %v, want %v", got, want)
	}
}

// TestAnswerSetIterationDeterministic pins the iteration orders the
// engine's determinism rests on: insertion order while packed, ascending
// handle order once spilled.
func TestAnswerSetIterationDeterministic(t *testing.T) {
	var s answerSet
	packed := []int32{9, 2, 31, 5}
	for _, h := range packed {
		s.Add(h)
	}
	if got := s.AppendTo(nil); !slices.Equal(got, packed) {
		t.Fatalf("packed iteration = %v, want insertion order %v", got, packed)
	}

	// Push past the spill threshold with descending handles: iteration
	// must switch to ascending handle order.
	var spilled answerSet
	for h := int32(2 * answerSpill); h > 0; h-- {
		spilled.Add(h * 3)
	}
	got := spilled.AppendTo(nil)
	if !slices.IsSorted(got) {
		t.Fatalf("spilled iteration not ascending: %v", got)
	}
	if len(got) != 2*answerSpill {
		t.Fatalf("spilled set lost elements: %d != %d", len(got), 2*answerSpill)
	}
}

// TestAnswerSetClearReuse checks Clear retains storage but empties the
// set in both representations.
func TestAnswerSetClearReuse(t *testing.T) {
	var s answerSet
	for h := int32(0); h < 3*answerSpill; h++ {
		s.Add(h)
	}
	if s.bits == nil {
		t.Fatal("set should have spilled")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len after Clear = %d", s.Len())
	}
	for h := int32(0); h < 3*answerSpill; h++ {
		if s.Has(h) {
			t.Fatalf("Has(%d) after Clear", h)
		}
	}
	if !s.Add(7) {
		t.Fatal("Add after Clear reported duplicate")
	}
}
