package core

import "slices"

// ChecksumIDs returns an order-independent checksum of an answer set,
// used by the out-of-sync recovery handshake: a reconnecting client sends
// the checksum of its (rolled-back) answer; if it matches the server's
// committed answer the incremental diff suffices, otherwise the server
// falls back to resending the complete answer.
//
// Each ID is mixed through SplitMix64 and the results are XORed, so the
// checksum is independent of iteration order.
func ChecksumIDs(ids []ObjectID) uint64 {
	var sum uint64
	for _, id := range ids {
		sum ^= splitmix64(uint64(id))
	}
	return sum
}

// checksumAnswer folds a handle-keyed answer set, translating handles
// to ObjectIDs so the checksum is comparable with a client's.
func (e *Engine) checksumAnswer(s *answerSet) uint64 {
	var sum uint64
	members := s.AppendTo(e.hBuf[:0])
	e.hBuf = members
	for _, h := range members {
		sum ^= splitmix64(uint64(e.idByH[h]))
	}
	return sum
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AnswerChecksum returns the checksum of q's current answer; ok is false
// when q is unknown.
func (e *Engine) AnswerChecksum(q QueryID) (uint64, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return 0, false
	}
	return e.checksumAnswer(&qs.answer), true
}

// CommittedChecksum returns the checksum of q's committed answer; ok is
// false when q is unknown. A query that never committed has the checksum
// of the empty set (0).
func (e *Engine) CommittedChecksum(q QueryID) (uint64, bool) {
	qs, ok := e.qrys[q]
	if !ok {
		return 0, false
	}
	return ChecksumIDs(qs.committed), true
}

// SeedCommitted installs a committed answer for q, typically restored
// from the repository after a server restart, so that clients of
// long-lived queries can recover incrementally across restarts. Unknown
// object IDs are permitted: they simply produce negative updates on the
// next Recover. It reports whether q is registered.
func (e *Engine) SeedCommitted(q QueryID, objs []ObjectID) bool {
	qs, ok := e.qrys[q]
	if !ok {
		return false
	}
	dst := append(qs.committed[:0], objs...)
	// The committed snapshot is a set: dedupe, since the caller's input
	// is unconstrained (a duplicate would double-emit on Recover).
	slices.Sort(dst)
	qs.committed = slices.Compact(dst)
	// The installed snapshot need not match the live answer, so the next
	// commit must rebuild even if no membership changed since.
	qs.snapClean = false
	return true
}
