// Package tpr implements a time-parameterized R-tree (TPR-tree, Šaltenis
// et al., SIGMOD 2000) over moving points, the access method the paper's
// related work uses for predictive queries. Each index entry carries a
// reference-time bounding rectangle plus per-axis velocity bounds; the
// bounds of any subtree at time t are obtained by expanding the rectangle
// with the velocity extremes, so the tree answers "who may be here during
// [t1, t2]" without re-indexing as objects move.
//
// The implementation follows the original design with one documented
// simplification: subtree choice minimizes the sum of bounding-box
// enlargements sampled at the reference time and one horizon ahead,
// rather than the exact time-integral of the area (a two-point quadrature
// of the same objective).
//
// It exists as the substrate for the predictive-query baseline that the
// benchmarks compare against the paper's shared-grid approach.
package tpr

import (
	"fmt"
	"math"

	"cqp/internal/geo"
)

const (
	defaultMax = 16
	defaultMin = 6
)

// Entry is one moving point: position Loc at reference time T, moving
// with velocity Vel.
type Entry struct {
	ID  uint64
	Loc geo.Point
	Vel geo.Vector
	T   float64
}

// tpbr is a time-parameterized bounding rectangle: spatial bounds valid
// at the tree's reference time, expanding with the velocity bounds.
type tpbr struct {
	rect geo.Rect
	vlo  geo.Vector // lower velocity bound per axis
	vhi  geo.Vector // upper velocity bound per axis
}

// at returns the bounding rectangle at time offset dt from the reference
// time (dt ≥ 0; the TPR-tree never answers queries about the past).
func (b tpbr) at(dt float64) geo.Rect {
	if dt < 0 {
		dt = 0
	}
	return geo.Rect{
		MinX: b.rect.MinX + b.vlo.DX*dt,
		MinY: b.rect.MinY + b.vlo.DY*dt,
		MaxX: b.rect.MaxX + b.vhi.DX*dt,
		MaxY: b.rect.MaxY + b.vhi.DY*dt,
	}
}

// over returns a rectangle covering the TPBR throughout [dt1, dt2].
func (b tpbr) over(dt1, dt2 float64) geo.Rect {
	return b.at(dt1).Union(b.at(dt2))
}

func (b tpbr) union(o tpbr) tpbr {
	return tpbr{
		rect: b.rect.Union(o.rect),
		vlo:  geo.Vec(math.Min(b.vlo.DX, o.vlo.DX), math.Min(b.vlo.DY, o.vlo.DY)),
		vhi:  geo.Vec(math.Max(b.vhi.DX, o.vhi.DX), math.Max(b.vhi.DY, o.vhi.DY)),
	}
}

type nodeEntry struct {
	bounds tpbr
	child  *node // nil for leaf entries
	id     uint64
	loc    geo.Point
	vel    geo.Vector
}

type node struct {
	leaf    bool
	parent  *node
	entries []nodeEntry
}

// Tree is a TPR-tree. The zero value is unusable; call New.
type Tree struct {
	root    *node
	tref    float64 // reference time of all stored rectangles
	horizon float64 // lookahead used by the insertion objective
	size    int
	maxFill int
	minFill int
	leafOf  map[uint64]*node // deletion shortcut
}

// New creates an empty TPR-tree with reference time tref and insertion
// horizon H (how far into the future the tree optimizes its grouping —
// typically the querying window length).
func New(tref, horizon float64) *Tree {
	if horizon <= 0 {
		panic(fmt.Sprintf("tpr: horizon must be positive, got %v", horizon))
	}
	return &Tree{
		root:    &node{leaf: true},
		tref:    tref,
		horizon: horizon,
		maxFill: defaultMax,
		minFill: defaultMin,
		leafOf:  make(map[uint64]*node),
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// RefTime returns the tree's reference time.
func (t *Tree) RefTime() float64 { return t.tref }

// normalize shifts a moving point's position to the tree's reference
// time (backwards extrapolation along its linear motion), so that every
// stored entry shares tref and the TPBR algebra is uniform.
func (t *Tree) normalize(e Entry) Entry {
	e.Loc = e.Loc.Add(e.Vel.Scale(t.tref - e.T))
	e.T = t.tref
	return e
}

func entryTPBR(e Entry) tpbr {
	return tpbr{
		rect: geo.Rect{MinX: e.Loc.X, MinY: e.Loc.Y, MaxX: e.Loc.X, MaxY: e.Loc.Y},
		vlo:  e.Vel,
		vhi:  e.Vel,
	}
}

// Insert adds a moving point. Inserting an ID that is already present
// replaces it (delete + insert), which is the TPR-tree's update model.
func (t *Tree) Insert(e Entry) {
	if _, ok := t.leafOf[e.ID]; ok {
		t.Delete(e.ID)
	}
	e = t.normalize(e)
	b := entryTPBR(e)
	leaf := t.chooseLeaf(b)
	leaf.entries = append(leaf.entries, nodeEntry{
		bounds: b, id: e.ID, loc: e.Loc, vel: e.Vel,
	})
	t.leafOf[e.ID] = leaf
	t.size++
	t.adjustUp(leaf)
}

// cost is the insertion objective: enlargement sampled now and one
// horizon ahead.
func (t *Tree) cost(container tpbr, b tpbr) float64 {
	now := container.rect.Enlargement(b.rect)
	later := container.over(t.horizon, t.horizon).Enlargement(b.over(t.horizon, t.horizon))
	return now + later
}

func (t *Tree) chooseLeaf(b tpbr) *node {
	n := t.root
	for !n.leaf {
		best, bestCost := 0, math.Inf(1)
		for i := range n.entries {
			c := t.cost(n.entries[i].bounds, b)
			if c < bestCost {
				best, bestCost = i, c
			}
		}
		n = n.entries[best].child
	}
	return n
}

// adjustUp recomputes bounds from leaf to root, splitting overflowing
// nodes.
func (t *Tree) adjustUp(n *node) {
	for n != nil {
		if len(n.entries) > t.maxFill {
			t.split(n)
		} else if n.parent != nil {
			idx := childIndex(n.parent, n)
			n.parent.entries[idx].bounds = nodeBounds(n)
		}
		n = n.parent
	}
}

func childIndex(parent, child *node) int {
	for i := range parent.entries {
		if parent.entries[i].child == child {
			return i
		}
	}
	panic("tpr: child not found in parent")
}

func nodeBounds(n *node) tpbr {
	b := n.entries[0].bounds
	for _, e := range n.entries[1:] {
		b = b.union(e.bounds)
	}
	return b
}

// split performs a quadratic split of n (Guttman's algorithm on the
// horizon-expanded rectangles, so grouping respects future positions).
func (t *Tree) split(n *node) {
	ents := n.entries
	area := func(b tpbr) float64 { return b.over(0, t.horizon).Area() }
	unionArea := func(a, b tpbr) float64 { return a.union(b).over(0, t.horizon).Area() }

	seedA, seedB, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			waste := unionArea(ents[i].bounds, ents[j].bounds) - area(ents[i].bounds) - area(ents[j].bounds)
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}

	groupA := []nodeEntry{ents[seedA]}
	groupB := []nodeEntry{ents[seedB]}
	bA, bB := ents[seedA].bounds, ents[seedB].bounds
	var rest []nodeEntry
	for i := range ents {
		if i != seedA && i != seedB {
			rest = append(rest, ents[i])
		}
	}
	for len(rest) > 0 {
		if len(groupA)+len(rest) == t.minFill {
			for _, e := range rest {
				groupA = append(groupA, e)
				bA = bA.union(e.bounds)
			}
			break
		}
		if len(groupB)+len(rest) == t.minFill {
			for _, e := range rest {
				groupB = append(groupB, e)
				bB = bB.union(e.bounds)
			}
			break
		}
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := unionArea(bA, e.bounds) - area(bA)
			dB := unionArea(bB, e.bounds) - area(bB)
			if diff := math.Abs(dA - dB); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dA := unionArea(bA, e.bounds) - area(bA)
		dB := unionArea(bB, e.bounds) - area(bB)
		toA := dA < dB || (dA == dB && len(groupA) <= len(groupB))
		if toA {
			groupA = append(groupA, e)
			bA = bA.union(e.bounds)
		} else {
			groupB = append(groupB, e)
			bB = bB.union(e.bounds)
		}
	}

	sibling := &node{leaf: n.leaf, parent: n.parent, entries: groupB}
	n.entries = groupA
	t.reparent(n)
	t.reparent(sibling)

	if n.parent == nil {
		// Root split.
		newRoot := &node{leaf: false}
		newRoot.entries = []nodeEntry{
			{bounds: nodeBounds(n), child: n},
			{bounds: nodeBounds(sibling), child: sibling},
		}
		n.parent = newRoot
		sibling.parent = newRoot
		t.root = newRoot
		return
	}
	idx := childIndex(n.parent, n)
	n.parent.entries[idx].bounds = nodeBounds(n)
	n.parent.entries = append(n.parent.entries, nodeEntry{bounds: nodeBounds(sibling), child: sibling})
}

// reparent refreshes child-parent links and the leaf map after entries
// moved between nodes.
func (t *Tree) reparent(n *node) {
	if n.leaf {
		for i := range n.entries {
			t.leafOf[n.entries[i].id] = n
		}
		return
	}
	for i := range n.entries {
		n.entries[i].child.parent = n
	}
}

// Delete removes the entry with the given ID, reporting whether it was
// present. Underfull leaves are condensed by reinsertion.
func (t *Tree) Delete(id uint64) bool {
	leaf, ok := t.leafOf[id]
	if !ok {
		return false
	}
	for i := range leaf.entries {
		if leaf.entries[i].id == id {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	delete(t.leafOf, id)
	t.size--
	t.condense(leaf)
	return true
}

func (t *Tree) condense(n *node) {
	var orphans []nodeEntry
	for n.parent != nil {
		parent := n.parent
		if len(n.entries) < t.minFill {
			idx := childIndex(parent, n)
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			if n.leaf {
				orphans = append(orphans, n.entries...)
			} else {
				// Reinsert the leaves of the orphaned subtree.
				collectLeafEntries(n, &orphans)
			}
		} else {
			idx := childIndex(parent, n)
			parent.entries[idx].bounds = nodeBounds(n)
		}
		n = parent
	}
	// Shrink the root.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	for _, e := range orphans {
		t.size-- // Insert re-increments
		delete(t.leafOf, e.id)
		t.Insert(Entry{ID: e.id, Loc: e.loc, Vel: e.vel, T: t.tref})
	}
}

func collectLeafEntries(n *node, out *[]nodeEntry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for i := range n.entries {
		collectLeafEntries(n.entries[i].child, out)
	}
}

// SearchInterval calls fn for every stored moving point whose
// time-parameterized bounds may intersect r at some instant of [t1, t2]
// (absolute times ≥ the reference time). The caller applies the exact
// motion predicate; the tree guarantees no false negatives.
func (t *Tree) SearchInterval(r geo.Rect, t1, t2 float64, fn func(e Entry) bool) {
	dt1, dt2 := t1-t.tref, t2-t.tref
	if dt2 < dt1 {
		dt1, dt2 = dt2, dt1
	}
	if dt2 < 0 {
		return
	}
	if dt1 < 0 {
		dt1 = 0
	}
	t.search(t.root, r, dt1, dt2, fn)
}

func (t *Tree) search(n *node, r geo.Rect, dt1, dt2 float64, fn func(Entry) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.bounds.over(dt1, dt2).Intersects(r) {
			continue
		}
		if n.leaf {
			if !fn(Entry{ID: e.id, Loc: e.loc, Vel: e.vel, T: t.tref}) {
				return false
			}
		} else if !t.search(e.child, r, dt1, dt2, fn) {
			return false
		}
	}
	return true
}

// CheckInvariants validates the structure for tests: parent links, fill
// bounds, uniform depth, conservative bounds containment at the reference
// time and one horizon out, and leaf-map accuracy.
func (t *Tree) CheckInvariants() error {
	depth := -1
	count := 0
	var walk func(n *node, level int) error
	walk = func(n *node, level int) error {
		if n != t.root && len(n.entries) < t.minFill {
			return fmt.Errorf("underfull node at level %d: %d", level, len(n.entries))
		}
		if len(n.entries) > t.maxFill {
			return fmt.Errorf("overfull node at level %d: %d", level, len(n.entries))
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("leaf depth %d != %d", level, depth)
			}
			for i := range n.entries {
				count++
				if t.leafOf[n.entries[i].id] != n {
					return fmt.Errorf("leaf map stale for id %d", n.entries[i].id)
				}
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child.parent != n {
				return fmt.Errorf("broken parent link at level %d", level)
			}
			got := nodeBounds(e.child)
			for _, dt := range []float64{0, t.horizon} {
				if !e.bounds.at(dt).Expand(1e-9).ContainsRect(got.at(dt)) {
					return fmt.Errorf("non-conservative bounds at level %d dt=%v", level, dt)
				}
			}
			if err := walk(e.child, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d, counted %d", t.size, count)
	}
	return nil
}
