package tpr

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

func TestNewPanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 0)
}

func TestInsertSearchBasics(t *testing.T) {
	tr := New(0, 10)
	// Object 1 moves east from (0, 5); object 2 is parked at (9, 9).
	tr.Insert(Entry{ID: 1, Loc: geo.Pt(0, 5), Vel: geo.Vec(1, 0), T: 0})
	tr.Insert(Entry{ID: 2, Loc: geo.Pt(9, 9), Vel: geo.Vector{}, T: 0})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}

	// A region around x=5 at times [4,6] should produce object 1 as a
	// candidate, not object 2.
	var got []uint64
	tr.SearchInterval(geo.R(4.5, 4.5, 5.5, 5.5), 4, 6, func(e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("candidates = %v", got)
	}

	// Entirely past window: nothing (the TPR-tree answers the future).
	got = nil
	tr.SearchInterval(geo.R(0, 0, 10, 10), -5, -1, func(e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("past window candidates = %v", got)
	}

	// Replacement: re-inserting ID 1 with a new vector replaces it.
	tr.Insert(Entry{ID: 1, Loc: geo.Pt(0, 0), Vel: geo.Vec(0, 1), T: 0})
	if tr.Len() != 2 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	got = nil
	tr.SearchInterval(geo.R(4.5, 4.5, 5.5, 5.5), 4, 6, func(e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("stale candidate after replace: %v", got)
	}
}

func TestDeleteAndConsistency(t *testing.T) {
	tr := New(0, 10)
	rng := rand.New(rand.NewSource(1))
	for i := uint64(1); i <= 500; i++ {
		tr.Insert(Entry{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*100, rng.Float64()*100),
			Vel: geo.Vec(rng.Float64()*2-1, rng.Float64()*2-1),
			T:   0,
		})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 250; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if i%37 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i, err)
			}
		}
	}
	if tr.Delete(1) {
		t.Error("double delete succeeded")
	}
	if tr.Delete(9999) {
		t.Error("deleting unknown succeeded")
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete everything; the tree must stay usable.
	for i := uint64(251); i <= 500; i++ {
		tr.Delete(i)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after emptying = %d", tr.Len())
	}
	tr.Insert(Entry{ID: 1, Loc: geo.Pt(1, 1), T: 0})
	if tr.Len() != 1 {
		t.Fatal("reuse after emptying failed")
	}
}

// TestNoFalseNegatives is the correctness contract: every moving point
// whose exact motion passes through the query region during the window
// must be among the returned candidates.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New(100, 20)
	type obj struct {
		loc geo.Point
		vel geo.Vector
		t   float64
	}
	objs := map[uint64]obj{}
	for i := uint64(1); i <= 400; i++ {
		o := obj{
			loc: geo.Pt(rng.Float64(), rng.Float64()),
			vel: geo.Vec(rng.Float64()*0.02-0.01, rng.Float64()*0.02-0.01),
			t:   100 + rng.Float64()*5,
		}
		objs[i] = o
		tr.Insert(Entry{ID: i, Loc: o.loc, Vel: o.vel, T: o.t})
	}
	// Churn: move a third of them.
	for i := uint64(1); i <= 400; i += 3 {
		o := obj{
			loc: geo.Pt(rng.Float64(), rng.Float64()),
			vel: geo.Vec(rng.Float64()*0.02-0.01, rng.Float64()*0.02-0.01),
			t:   105 + rng.Float64()*5,
		}
		objs[i] = o
		tr.Insert(Entry{ID: i, Loc: o.loc, Vel: o.vel, T: o.t})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 60; trial++ {
		r := geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.05+rng.Float64()*0.2)
		t1 := 100 + rng.Float64()*10
		t2 := t1 + rng.Float64()*10
		cands := map[uint64]bool{}
		tr.SearchInterval(r, t1, t2, func(e Entry) bool {
			cands[e.ID] = true
			return true
		})
		for id, o := range objs {
			m := geo.Motion{Start: o.loc, Vel: o.vel, T0: o.t}
			if m.IntersectsRectDuring(r, t1, t2) && !cands[id] {
				t.Fatalf("trial %d: object %d intersects but was not a candidate", trial, id)
			}
		}
	}
}

// TestPruningEffective sanity-checks that the tree actually prunes: a
// query far from everything should visit no leaf entries.
func TestPruningEffective(t *testing.T) {
	tr := New(0, 5)
	rng := rand.New(rand.NewSource(3))
	for i := uint64(1); i <= 300; i++ {
		// Objects in [0,1]² moving slowly.
		tr.Insert(Entry{
			ID:  i,
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
			Vel: geo.Vec(rng.Float64()*0.002-0.001, rng.Float64()*0.002-0.001),
			T:   0,
		})
	}
	visited := 0
	tr.SearchInterval(geo.R(50, 50, 51, 51), 0, 5, func(Entry) bool {
		visited++
		return true
	})
	if visited != 0 {
		t.Fatalf("distant query visited %d entries", visited)
	}
	// Early stop works.
	n := 0
	tr.SearchInterval(geo.R(0, 0, 1, 1), 0, 5, func(Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRandomChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := New(0, 10)
	live := map[uint64]bool{}
	next := uint64(1)
	for op := 0; op < 3000; op++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.5:
			id := next
			next++
			live[id] = true
			tr.Insert(Entry{
				ID:  id,
				Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10),
				Vel: geo.Vec(rng.Float64()-0.5, rng.Float64()-0.5),
				T:   rng.Float64() * 5,
			})
		case rng.Float64() < 0.5:
			// Update a live entry.
			var id uint64
			for id = range live {
				break
			}
			tr.Insert(Entry{ID: id, Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10), T: rng.Float64() * 5})
		default:
			var id uint64
			for id = range live {
				break
			}
			delete(live, id)
			if !tr.Delete(id) {
				t.Fatalf("op %d: delete %d failed", op, id)
			}
		}
		if op%487 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("op %d: Len=%d live=%d", op, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
