// Package qindex implements the Q-index baseline from the related work
// the paper positions against (Prabhakar et al., "Query Indexing and
// Velocity Constrained Indexing"): instead of indexing objects, an R-tree
// is built over the *query* regions, and at each evaluation interval
// every moving object probes the index to find the queries it belongs to.
//
// As the paper notes, the Q-index (1) re-evaluates all queries every
// interval and (2) supports only stationary queries; both limitations are
// preserved here so the comparison is faithful.
package qindex

import (
	"fmt"
	"sort"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/rtree"
)

// Engine is the Q-index baseline.
type Engine struct {
	tree *rtree.Tree
	qrys map[core.QueryID]geo.Rect
	objs map[core.ObjectID]geo.Point

	objBuf []core.ObjectUpdate
}

// New constructs an empty Q-index engine.
func New() *Engine {
	return &Engine{
		tree: rtree.New(),
		qrys: make(map[core.QueryID]geo.Rect),
		objs: make(map[core.ObjectID]geo.Point),
	}
}

// RegisterQuery adds a stationary range query. Re-registering an ID
// replaces its region. Only stationary rectangular queries are supported;
// this mirrors the baseline's documented limitation.
func (e *Engine) RegisterQuery(id core.QueryID, region geo.Rect) {
	if old, ok := e.qrys[id]; ok {
		e.tree.Delete(uint64(id), old)
	}
	e.qrys[id] = region
	e.tree.Insert(uint64(id), region)
}

// RemoveQuery deletes a query. It reports whether the query existed.
func (e *Engine) RemoveQuery(id core.QueryID) bool {
	region, ok := e.qrys[id]
	if !ok {
		return false
	}
	e.tree.Delete(uint64(id), region)
	delete(e.qrys, id)
	return true
}

// ReportObject buffers an object location report (or removal) for the
// next Step.
func (e *Engine) ReportObject(u core.ObjectUpdate) { e.objBuf = append(e.objBuf, u) }

// ReportQuery satisfies gen.Sink for stationary range workloads; it
// panics on unsupported query kinds, documenting the baseline's limits.
func (e *Engine) ReportQuery(u core.QueryUpdate) {
	if u.Remove {
		e.RemoveQuery(u.ID)
		return
	}
	if u.Kind != core.Range {
		panic(fmt.Sprintf("qindex: unsupported query kind %v (Q-index handles stationary range queries only)", u.Kind))
	}
	e.RegisterQuery(u.ID, u.Region)
}

// NumQueries returns the registered query count.
func (e *Engine) NumQueries() int { return len(e.qrys) }

// NumObjects returns the known object count.
func (e *Engine) NumObjects() int { return len(e.objs) }

// Step applies buffered object reports and then has *every* object probe
// the query index, rebuilding the answer of every query from scratch —
// the Q-index evaluation model. Answers are sorted by query then object.
func (e *Engine) Step(now float64) []core.Snapshot {
	for _, u := range e.objBuf {
		if u.Remove {
			delete(e.objs, u.ID)
			continue
		}
		e.objs[u.ID] = u.Loc
	}
	e.objBuf = e.objBuf[:0]

	answers := make(map[core.QueryID][]core.ObjectID, len(e.qrys))
	for oid, loc := range e.objs {
		e.tree.SearchPoint(loc, func(qid uint64, _ geo.Rect) bool {
			answers[core.QueryID(qid)] = append(answers[core.QueryID(qid)], oid)
			return true
		})
	}

	out := make([]core.Snapshot, 0, len(e.qrys))
	for qid := range e.qrys {
		objs := answers[qid]
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		out = append(out, core.Snapshot{Query: qid, Objects: objs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}
