package qindex

import (
	"math/rand"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func TestQIndexBasics(t *testing.T) {
	e := New()
	e.RegisterQuery(1, geo.R(0, 0, 5, 5))
	e.RegisterQuery(2, geo.R(4, 4, 8, 8))
	e.ReportObject(core.ObjectUpdate{ID: 1, Loc: geo.Pt(4.5, 4.5)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Loc: geo.Pt(9, 9)})
	snaps := e.Step(0)
	if len(snaps) != 2 {
		t.Fatalf("snaps = %+v", snaps)
	}
	if len(snaps[0].Objects) != 1 || snaps[0].Objects[0] != 1 {
		t.Fatalf("Q1 = %v", snaps[0].Objects)
	}
	if len(snaps[1].Objects) != 1 || snaps[1].Objects[0] != 1 {
		t.Fatalf("Q2 = %v", snaps[1].Objects)
	}

	// Re-registration replaces the region.
	e.RegisterQuery(1, geo.R(8.5, 8.5, 9.5, 9.5))
	snaps = e.Step(1)
	if len(snaps[0].Objects) != 1 || snaps[0].Objects[0] != 2 {
		t.Fatalf("after move Q1 = %v", snaps[0].Objects)
	}

	if !e.RemoveQuery(2) || e.RemoveQuery(2) {
		t.Error("RemoveQuery semantics broken")
	}
	e.ReportObject(core.ObjectUpdate{ID: 2, Remove: true})
	snaps = e.Step(2)
	if len(snaps) != 1 || len(snaps[0].Objects) != 0 {
		t.Fatalf("after removals: %+v", snaps)
	}
	if e.NumQueries() != 1 || e.NumObjects() != 1 {
		t.Fatalf("counts: %d/%d", e.NumQueries(), e.NumObjects())
	}
}

func TestQIndexRejectsNonRange(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for kNN query")
		}
	}()
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.KNN, Focal: geo.Pt(1, 1), K: 2})
}

func TestQIndexSinkInterface(t *testing.T) {
	e := New()
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(0, 0, 1, 1)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Remove: true})
	if e.NumQueries() != 0 {
		t.Fatalf("NumQueries = %d", e.NumQueries())
	}
}

// TestQIndexMatchesIncremental cross-checks the Q-index against the
// incremental engine on stationary queries with moving objects.
func TestQIndexMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inc := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8})
	qi := New()

	for j := core.QueryID(1); j <= 20; j++ {
		u := core.QueryUpdate{ID: j, Kind: core.Range,
			Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.15)}
		inc.ReportQuery(u)
		qi.ReportQuery(u)
	}
	for i := core.ObjectID(1); i <= 60; i++ {
		u := core.ObjectUpdate{ID: i, Kind: core.Moving, Loc: geo.Pt(rng.Float64(), rng.Float64())}
		inc.ReportObject(u)
		qi.ReportObject(u)
	}

	for step := 0; step < 30; step++ {
		for n := rng.Intn(15); n > 0; n-- {
			u := core.ObjectUpdate{
				ID: core.ObjectID(1 + rng.Intn(60)), Kind: core.Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()),
			}
			inc.ReportObject(u)
			qi.ReportObject(u)
		}
		inc.Step(float64(step))
		for _, s := range qi.Step(float64(step)) {
			want, _ := inc.Answer(s.Query)
			if len(want) != len(s.Objects) {
				t.Fatalf("step %d query %d: qindex %v incremental %v", step, s.Query, s.Objects, want)
			}
			for i := range want {
				if want[i] != s.Objects[i] {
					t.Fatalf("step %d query %d: qindex %v incremental %v", step, s.Query, s.Objects, want)
				}
			}
		}
	}
}
