// Package tprq is a predictive-query baseline built on the TPR-tree
// (internal/tpr), the access-method family the paper's related work uses
// for querying the future. Predictive objects are indexed by
// time-parameterized bounding rectangles; each evaluation answers every
// predictive range query from scratch by probing the tree and applying
// the exact motion predicate to the candidates.
//
// Like the other baselines it returns complete answers per evaluation;
// the benchmarks compare its evaluation cost against the paper's shared
// grid with incremental updates.
package tprq

import (
	"sort"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/tpr"
)

// Engine is the TPR-tree predictive baseline.
type Engine struct {
	tree    *tpr.Tree
	horizon float64
	objs    map[core.ObjectID]core.ObjectUpdate
	qrys    map[core.QueryID]query

	objBuf []core.ObjectUpdate
	qryBuf []core.QueryUpdate
}

type query struct {
	region geo.Rect
	t1, t2 float64
}

// New creates a baseline engine. refTime anchors the TPR-tree; horizon
// bounds prediction validity exactly as core.Options.PredictiveHorizon
// does, so answers are comparable.
func New(refTime, horizon float64) *Engine {
	return &Engine{
		tree:    tpr.New(refTime, horizon),
		horizon: horizon,
		objs:    make(map[core.ObjectID]core.ObjectUpdate),
		qrys:    make(map[core.QueryID]query),
	}
}

// ReportObject buffers a predictive object report. Non-predictive kinds
// are ignored (this baseline only serves predictive queries).
func (e *Engine) ReportObject(u core.ObjectUpdate) { e.objBuf = append(e.objBuf, u) }

// ReportQuery buffers a predictive range query registration or removal.
// Other kinds are ignored.
func (e *Engine) ReportQuery(u core.QueryUpdate) { e.qryBuf = append(e.qryBuf, u) }

// NumObjects returns the number of indexed predictive objects.
func (e *Engine) NumObjects() int { return e.tree.Len() }

// NumQueries returns the number of registered queries.
func (e *Engine) NumQueries() int { return len(e.qrys) }

// Step applies buffered reports and evaluates every registered query
// from scratch against the TPR-tree, returning complete answers sorted
// by query then object.
func (e *Engine) Step(now float64) []core.Snapshot {
	for _, u := range e.objBuf {
		switch {
		case u.Remove:
			delete(e.objs, u.ID)
			e.tree.Delete(uint64(u.ID))
		case u.Kind == core.Predictive:
			e.objs[u.ID] = u
			e.tree.Insert(tpr.Entry{ID: uint64(u.ID), Loc: u.Loc, Vel: u.Vel, T: u.T})
		}
	}
	for _, u := range e.qryBuf {
		switch {
		case u.Remove:
			delete(e.qrys, u.ID)
		case u.Kind == core.PredictiveRange:
			e.qrys[u.ID] = query{region: u.Region, t1: u.T1, t2: u.T2}
		}
	}
	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]

	out := make([]core.Snapshot, 0, len(e.qrys))
	for qid, q := range e.qrys {
		out = append(out, core.Snapshot{Query: qid, Objects: e.evaluate(q)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// evaluate probes the tree for candidates and applies the exact motion
// predicate with the same horizon clipping as the core engine.
func (e *Engine) evaluate(q query) []core.ObjectID {
	var out []core.ObjectID
	e.tree.SearchInterval(q.region, q.t1, q.t2, func(cand tpr.Entry) bool {
		u := e.objs[core.ObjectID(cand.ID)]
		t1, t2 := q.t1, q.t2
		if t1 < u.T {
			t1 = u.T
		}
		if max := u.T + e.horizon; t2 > max {
			t2 = max
		}
		if t1 > t2 {
			return true
		}
		m := geo.Motion{Start: u.Loc, Vel: u.Vel, T0: u.T}
		if m.IntersectsRectDuring(q.region, t1, t2) {
			out = append(out, core.ObjectID(cand.ID))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
