package tprq

import (
	"math/rand"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func TestBasicsAndLifecycle(t *testing.T) {
	e := New(0, 100)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Predictive, Loc: geo.Pt(0, 5), Vel: geo.Vec(1, 0), T: 0})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Predictive, Loc: geo.Pt(9, 9), T: 0})
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(5, 5), T: 0}) // ignored
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 4, T2: 6})
	e.ReportQuery(core.QueryUpdate{ID: 2, Kind: core.Range, Region: geo.R(0, 0, 1, 1)}) // ignored
	snaps := e.Step(0)
	if len(snaps) != 1 || snaps[0].Query != 1 {
		t.Fatalf("snaps = %+v", snaps)
	}
	if len(snaps[0].Objects) != 1 || snaps[0].Objects[0] != 1 {
		t.Fatalf("answer = %v", snaps[0].Objects)
	}
	if e.NumObjects() != 2 || e.NumQueries() != 1 {
		t.Fatalf("counts: %d/%d", e.NumObjects(), e.NumQueries())
	}

	// Velocity change removes object 1 from the answer.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Predictive, Loc: geo.Pt(2, 5), Vel: geo.Vec(0, 1), T: 2})
	snaps = e.Step(2)
	if len(snaps[0].Objects) != 0 {
		t.Fatalf("after turn: %v", snaps[0].Objects)
	}

	// Removals.
	e.ReportObject(core.ObjectUpdate{ID: 1, Remove: true})
	e.ReportQuery(core.QueryUpdate{ID: 1, Remove: true})
	if snaps = e.Step(3); len(snaps) != 0 {
		t.Fatalf("after removal: %+v", snaps)
	}
	if e.NumObjects() != 1 {
		t.Fatalf("objects = %d", e.NumObjects())
	}
}

// TestMatchesCoreEngine cross-validates the TPR baseline against the
// incremental engine on an identical predictive workload.
func TestMatchesCoreEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const horizon = 100
	inc := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8, PredictiveHorizon: horizon})
	bl := New(0, horizon)

	for j := core.QueryID(1); j <= 15; j++ {
		u := core.QueryUpdate{
			ID: j, Kind: core.PredictiveRange,
			Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.1+rng.Float64()*0.2),
			T1:     rng.Float64() * 20, T2: 20 + rng.Float64()*30,
		}
		inc.ReportQuery(u)
		bl.ReportQuery(u)
	}
	for step := 0; step < 30; step++ {
		now := float64(step)
		for n := rng.Intn(10); n > 0; n-- {
			u := core.ObjectUpdate{
				ID: core.ObjectID(1 + rng.Intn(50)), Kind: core.Predictive,
				Loc: geo.Pt(rng.Float64(), rng.Float64()),
				Vel: geo.Vec(rng.Float64()*0.02-0.01, rng.Float64()*0.02-0.01),
				T:   now,
			}
			inc.ReportObject(u)
			bl.ReportObject(u)
		}
		inc.Step(now)
		for _, s := range bl.Step(now) {
			want, _ := inc.Answer(s.Query)
			if len(want) != len(s.Objects) {
				t.Fatalf("step %d query %d: tpr %v core %v", step, s.Query, s.Objects, want)
			}
			for i := range want {
				if want[i] != s.Objects[i] {
					t.Fatalf("step %d query %d: tpr %v core %v", step, s.Query, s.Objects, want)
				}
			}
		}
	}
}
