// Package vci implements the Velocity-Constrained Indexing baseline from
// Prabhakar et al. ("Query Indexing and Velocity Constrained Indexing:
// Scalable Techniques for Continuous Queries on Moving Objects"), the
// second technique of the paper's citation [20]. An R-tree over object
// positions is built at a reference time and deliberately *not* updated
// as objects move; instead, every query region is expanded by
// vmax·(now − buildTime) before probing — objects cannot have escaped
// farther than the speed bound allows — and the conservative candidates
// are refined against current exact positions. The index is rebuilt when
// the expansion grows past a threshold.
//
// Like the paper's other comparison engines it re-evaluates every query
// per step and returns complete answers.
package vci

import (
	"fmt"
	"sort"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/rtree"
)

// Engine is the VCI baseline for rectangular range queries over moving
// objects with a known maximum speed.
type Engine struct {
	maxSpeed     float64
	rebuildEvery float64

	tree      *rtree.Tree
	builtAt   float64
	inTree    map[core.ObjectID]geo.Point // position as indexed
	current   map[core.ObjectID]geo.Point // latest reported position
	unindexed map[core.ObjectID]struct{}  // appeared since the last rebuild

	qrys map[core.QueryID]geo.Rect

	objBuf []core.ObjectUpdate
	qryBuf []core.QueryUpdate

	rebuilds int
}

// New creates a VCI engine. maxSpeed bounds every object's speed (space
// units per time unit) — reports that violate it can be missed, exactly
// as in the original technique. rebuildEvery bounds the index staleness;
// the expansion radius never exceeds maxSpeed·rebuildEvery.
func New(maxSpeed, rebuildEvery float64) *Engine {
	if maxSpeed <= 0 || rebuildEvery <= 0 {
		panic(fmt.Sprintf("vci: maxSpeed and rebuildEvery must be positive, got %v, %v", maxSpeed, rebuildEvery))
	}
	return &Engine{
		maxSpeed:     maxSpeed,
		rebuildEvery: rebuildEvery,
		tree:         rtree.New(),
		inTree:       make(map[core.ObjectID]geo.Point),
		current:      make(map[core.ObjectID]geo.Point),
		unindexed:    make(map[core.ObjectID]struct{}),
		qrys:         make(map[core.QueryID]geo.Rect),
	}
}

// ReportObject buffers an object report.
func (e *Engine) ReportObject(u core.ObjectUpdate) { e.objBuf = append(e.objBuf, u) }

// ReportQuery buffers a range-query registration or removal. Non-range
// kinds panic: VCI serves range queries.
func (e *Engine) ReportQuery(u core.QueryUpdate) {
	if !u.Remove && u.Kind != core.Range {
		panic(fmt.Sprintf("vci: unsupported query kind %v", u.Kind))
	}
	e.qryBuf = append(e.qryBuf, u)
}

// NumObjects returns the known object count.
func (e *Engine) NumObjects() int { return len(e.current) }

// NumQueries returns the registered query count.
func (e *Engine) NumQueries() int { return len(e.qrys) }

// Rebuilds returns how many times the index has been rebuilt.
func (e *Engine) Rebuilds() int { return e.rebuilds }

// Step applies buffered reports and evaluates every query with
// velocity-constrained expansion, returning complete answers sorted by
// query then object.
func (e *Engine) Step(now float64) []core.Snapshot {
	for _, u := range e.objBuf {
		if u.Remove {
			if p, ok := e.inTree[u.ID]; ok {
				e.tree.Delete(uint64(u.ID), pointRect(p))
				delete(e.inTree, u.ID)
			}
			delete(e.current, u.ID)
			delete(e.unindexed, u.ID)
			continue
		}
		if _, known := e.current[u.ID]; !known {
			if _, indexed := e.inTree[u.ID]; !indexed {
				e.unindexed[u.ID] = struct{}{}
			}
		}
		e.current[u.ID] = u.Loc
	}
	for _, u := range e.qryBuf {
		if u.Remove {
			delete(e.qrys, u.ID)
		} else {
			e.qrys[u.ID] = u.Region
		}
	}
	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]

	if now-e.builtAt >= e.rebuildEvery || e.tree.Len() == 0 {
		e.rebuild(now)
	}

	expand := e.maxSpeed * (now - e.builtAt)
	out := make([]core.Snapshot, 0, len(e.qrys))
	for qid, region := range e.qrys {
		var ans []core.ObjectID
		probe := region.Expand(expand)
		e.tree.Search(probe, func(id uint64, _ geo.Rect) bool {
			oid := core.ObjectID(id)
			if cur, ok := e.current[oid]; ok && region.Contains(cur) {
				ans = append(ans, oid)
			}
			return true
		})
		// Objects that appeared after the last rebuild are checked
		// linearly — the technique's sideline list.
		for oid := range e.unindexed {
			if region.Contains(e.current[oid]) {
				ans = append(ans, oid)
			}
		}
		sort.Slice(ans, func(i, j int) bool { return ans[i] < ans[j] })
		out = append(out, core.Snapshot{Query: qid, Objects: ans})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// rebuild re-creates the R-tree from the current positions.
func (e *Engine) rebuild(now float64) {
	e.tree = rtree.New()
	e.inTree = make(map[core.ObjectID]geo.Point, len(e.current))
	for oid, p := range e.current {
		e.tree.Insert(uint64(oid), pointRect(p))
		e.inTree[oid] = p
	}
	e.unindexed = make(map[core.ObjectID]struct{})
	e.builtAt = now
	e.rebuilds++
}

func pointRect(p geo.Point) geo.Rect {
	return geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}
