package vci

import (
	"math/rand"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct{ v, r float64 }{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v,%v) should panic", tc.v, tc.r)
				}
			}()
			New(tc.v, tc.r)
		}()
	}
}

func TestRejectsNonRangeQueries(t *testing.T) {
	e := New(1, 10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for kNN query")
		}
	}()
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.KNN})
}

func TestBasicsAndStaleness(t *testing.T) {
	e := New(0.5, 100)
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(5, 5)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(4, 4, 6, 6)})
	snaps := e.Step(0)
	if len(snaps) != 1 || len(snaps[0].Objects) != 1 || snaps[0].Objects[0] != 1 {
		t.Fatalf("snaps = %+v", snaps)
	}
	if e.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", e.Rebuilds())
	}

	// Object 2 drifts into the region (within the speed bound) without the
	// index being rebuilt: the expansion must still find it.
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(5.5, 5.5), T: 10})
	snaps = e.Step(10)
	if len(snaps[0].Objects) != 2 {
		t.Fatalf("after drift: %v", snaps[0].Objects)
	}
	if e.Rebuilds() != 1 {
		t.Fatalf("premature rebuild: %d", e.Rebuilds())
	}

	// A brand-new object lands inside: found via the sideline list.
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(5, 5.2), T: 20})
	snaps = e.Step(20)
	if len(snaps[0].Objects) != 3 {
		t.Fatalf("sideline: %v", snaps[0].Objects)
	}

	// Past the rebuild interval the index refreshes.
	e.Step(150)
	if e.Rebuilds() != 2 {
		t.Fatalf("rebuilds = %d", e.Rebuilds())
	}

	// Removal works in both indexed and sideline states.
	e.ReportObject(core.ObjectUpdate{ID: 1, Remove: true})
	e.ReportObject(core.ObjectUpdate{ID: 99, Remove: true}) // unknown: no-op
	snaps = e.Step(151)
	if len(snaps[0].Objects) != 2 {
		t.Fatalf("after removal: %v", snaps[0].Objects)
	}
	if e.NumObjects() != 2 || e.NumQueries() != 1 {
		t.Fatalf("counts: %d/%d", e.NumObjects(), e.NumQueries())
	}
}

// TestMatchesIncrementalEngine cross-validates VCI against the core
// engine on a bounded-speed workload (random walks with step ≤ the speed
// bound times the tick length).
func TestMatchesIncrementalEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const (
		maxSpeed = 0.02
		dt       = 1.0
	)
	inc := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8})
	v := New(maxSpeed, 20)

	pos := map[core.ObjectID]geo.Point{}
	for i := core.ObjectID(1); i <= 60; i++ {
		p := geo.Pt(rng.Float64(), rng.Float64())
		pos[i] = p
		u := core.ObjectUpdate{ID: i, Kind: core.Moving, Loc: p}
		inc.ReportObject(u)
		v.ReportObject(u)
	}
	for j := core.QueryID(1); j <= 15; j++ {
		u := core.QueryUpdate{ID: j, Kind: core.Range,
			Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.2)}
		inc.ReportQuery(u)
		v.ReportQuery(u)
	}

	now := 0.0
	for step := 0; step < 100; step++ {
		now += dt
		for n := rng.Intn(20); n > 0; n-- {
			id := core.ObjectID(1 + rng.Intn(60))
			p := pos[id]
			// Bounded random walk.
			p = geo.Pt(
				clamp01(p.X+(rng.Float64()*2-1)*maxSpeed*dt),
				clamp01(p.Y+(rng.Float64()*2-1)*maxSpeed*dt),
			)
			pos[id] = p
			u := core.ObjectUpdate{ID: id, Kind: core.Moving, Loc: p, T: now}
			inc.ReportObject(u)
			v.ReportObject(u)
		}
		inc.Step(now)
		for _, s := range v.Step(now) {
			want, _ := inc.Answer(s.Query)
			if len(want) != len(s.Objects) {
				t.Fatalf("step %d query %d: vci %v core %v", step, s.Query, s.Objects, want)
			}
			for i := range want {
				if want[i] != s.Objects[i] {
					t.Fatalf("step %d query %d: vci %v core %v", step, s.Query, s.Objects, want)
				}
			}
		}
	}
	if v.Rebuilds() < 2 {
		t.Fatalf("expected periodic rebuilds, got %d", v.Rebuilds())
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
