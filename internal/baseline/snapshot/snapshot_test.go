package snapshot

import (
	"math/rand"
	"testing"

	"cqp/internal/core"
	"cqp/internal/geo"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(core.Options{}); err == nil {
		t.Error("empty bounds should fail")
	}
}

func TestSnapshotRange(t *testing.T) {
	e, err := New(core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(3, 3)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(8, 8)})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.Range, Region: geo.R(2, 2, 4, 4)})
	snaps := e.Step(0)
	if len(snaps) != 1 || snaps[0].Query != 1 {
		t.Fatalf("snaps = %+v", snaps)
	}
	if len(snaps[0].Objects) != 1 || snaps[0].Objects[0] != 1 {
		t.Fatalf("answer = %v", snaps[0].Objects)
	}

	// Unlike the incremental engine, a no-change step re-reports the full
	// answer.
	snaps = e.Step(1)
	if len(snaps) != 1 || len(snaps[0].Objects) != 1 {
		t.Fatalf("re-evaluation should return complete answers: %+v", snaps)
	}

	// Object moves out; removal reflected.
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	snaps = e.Step(2)
	if len(snaps[0].Objects) != 0 {
		t.Fatalf("after departure: %v", snaps[0].Objects)
	}
	e.ReportObject(core.ObjectUpdate{ID: 1, Remove: true})
	e.ReportQuery(core.QueryUpdate{ID: 1, Remove: true})
	if snaps = e.Step(3); len(snaps) != 0 {
		t.Fatalf("after removal: %+v", snaps)
	}
	if e.NumObjects() != 1 || e.NumQueries() != 0 {
		t.Fatalf("counts: %d/%d", e.NumObjects(), e.NumQueries())
	}
}

func TestSnapshotKNNAndPredictive(t *testing.T) {
	e, err := New(core.Options{Bounds: geo.R(0, 0, 10, 10), GridN: 8, PredictiveHorizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	e.ReportObject(core.ObjectUpdate{ID: 1, Kind: core.Moving, Loc: geo.Pt(1, 1)})
	e.ReportObject(core.ObjectUpdate{ID: 2, Kind: core.Moving, Loc: geo.Pt(2, 2)})
	e.ReportObject(core.ObjectUpdate{ID: 3, Kind: core.Moving, Loc: geo.Pt(9, 9)})
	e.ReportObject(core.ObjectUpdate{ID: 4, Kind: core.Predictive, Loc: geo.Pt(0, 5), Vel: geo.Vec(1, 0), T: 0})
	e.ReportQuery(core.QueryUpdate{ID: 1, Kind: core.KNN, Focal: geo.Pt(0, 0), K: 2})
	e.ReportQuery(core.QueryUpdate{ID: 2, Kind: core.PredictiveRange, Region: geo.R(4, 4, 6, 6), T1: 4, T2: 6})
	snaps := e.Step(0)
	if len(snaps) != 2 {
		t.Fatalf("snaps = %+v", snaps)
	}
	knn := snaps[0].Objects
	if len(knn) != 2 || knn[0] != 1 || knn[1] != 2 {
		t.Fatalf("knn = %v", knn)
	}
	pred := snaps[1].Objects
	if len(pred) != 1 || pred[0] != 4 {
		t.Fatalf("predictive = %v", pred)
	}
}

// TestSnapshotMatchesIncrementalOracle runs both engines over an
// identical random workload and asserts the snapshot answers equal the
// incremental engine's maintained answers every step.
func TestSnapshotMatchesIncrementalOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opt := core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: 8}
	inc := core.MustNewEngine(opt)
	snap, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}

	for i := core.ObjectID(1); i <= 50; i++ {
		u := core.ObjectUpdate{ID: i, Kind: core.Moving, Loc: geo.Pt(rng.Float64(), rng.Float64())}
		inc.ReportObject(u)
		snap.ReportObject(u)
	}
	for j := core.QueryID(1); j <= 10; j++ {
		u := core.QueryUpdate{ID: j, Kind: core.Range,
			Region: geo.RectAt(geo.Pt(rng.Float64(), rng.Float64()), 0.2)}
		inc.ReportQuery(u)
		snap.ReportQuery(u)
	}

	for step := 0; step < 50; step++ {
		for n := rng.Intn(10); n > 0; n-- {
			u := core.ObjectUpdate{
				ID: core.ObjectID(1 + rng.Intn(50)), Kind: core.Moving,
				Loc: geo.Pt(rng.Float64(), rng.Float64()), T: float64(step),
			}
			inc.ReportObject(u)
			snap.ReportObject(u)
		}
		inc.Step(float64(step))
		snaps := snap.Step(float64(step))
		for _, s := range snaps {
			want, _ := inc.Answer(s.Query)
			if len(want) != len(s.Objects) {
				t.Fatalf("step %d query %d: snapshot %v incremental %v", step, s.Query, s.Objects, want)
			}
			for i := range want {
				if want[i] != s.Objects[i] {
					t.Fatalf("step %d query %d: snapshot %v incremental %v", step, s.Query, s.Objects, want)
				}
			}
		}
	}
}
