// Package snapshot implements the naive baseline the paper argues
// against: continuous queries abstracted into a series of snapshot
// queries, re-evaluated from scratch every Δt seconds, with the *complete*
// answer shipped to every client each time.
//
// The engine shares the core engine's grid index so that comparisons
// against the incremental engine isolate the evaluation strategy
// (re-evaluate + resend vs. incremental updates) rather than index
// quality.
package snapshot

import (
	"sort"

	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/grid"
)

// Engine is the snapshot-re-evaluation baseline. Like core.Engine it is
// single-threaded and buffer-driven; its Step returns complete answers
// for every registered query.
type Engine struct {
	opt  core.Options
	g    *grid.Grid
	now  float64
	objs map[core.ObjectID]*object
	qrys map[core.QueryID]*query

	objBuf []core.ObjectUpdate
	qryBuf []core.QueryUpdate
}

type object struct {
	kind core.ObjectKind
	loc  geo.Point
	vel  geo.Vector
	t    float64
}

type query struct {
	kind   core.QueryKind
	region geo.Rect
	focal  geo.Point
	k      int
	t1, t2 float64
}

// New constructs a snapshot engine over the given space. The options are
// interpreted exactly as by core.NewEngine.
func New(opt core.Options) (*Engine, error) {
	// Validate via the real engine's rules by constructing one.
	probe, err := core.NewEngine(opt)
	if err != nil {
		return nil, err
	}
	bounds := probe.Bounds()
	n := opt.GridN
	if n == 0 {
		n = 64
	}
	return &Engine{
		opt:  opt,
		g:    grid.New(bounds, n),
		objs: make(map[core.ObjectID]*object),
		qrys: make(map[core.QueryID]*query),
	}, nil
}

// ReportObject buffers an object update for the next Step.
func (e *Engine) ReportObject(u core.ObjectUpdate) { e.objBuf = append(e.objBuf, u) }

// ReportQuery buffers a query update for the next Step.
func (e *Engine) ReportQuery(u core.QueryUpdate) { e.qryBuf = append(e.qryBuf, u) }

// NumObjects returns the registered object count.
func (e *Engine) NumObjects() int { return len(e.objs) }

// NumQueries returns the registered query count.
func (e *Engine) NumQueries() int { return len(e.qrys) }

// Step applies all buffered reports and re-evaluates every registered
// query from scratch, returning the complete answer of each: the paper's
// "complete answer" whose size Figure 5 compares against the incremental
// stream. Answers are sorted by query ID, then object ID.
func (e *Engine) Step(now float64) []core.Snapshot {
	e.now = now
	for _, u := range e.objBuf {
		if u.Remove {
			if o, ok := e.objs[u.ID]; ok {
				e.g.RemoveObject(uint64(u.ID), o.loc)
				delete(e.objs, u.ID)
			}
			continue
		}
		if o, ok := e.objs[u.ID]; ok {
			e.g.MoveObject(uint64(u.ID), o.loc, u.Loc)
			o.kind, o.loc, o.vel, o.t = u.Kind, u.Loc, u.Vel, u.T
		} else {
			e.g.InsertObject(uint64(u.ID), u.Loc)
			e.objs[u.ID] = &object{kind: u.Kind, loc: u.Loc, vel: u.Vel, t: u.T}
		}
	}
	for _, u := range e.qryBuf {
		if u.Remove {
			delete(e.qrys, u.ID)
			continue
		}
		e.qrys[u.ID] = &query{
			kind: u.Kind, region: u.Region, focal: u.Focal, k: u.K, t1: u.T1, t2: u.T2,
		}
	}
	e.objBuf = e.objBuf[:0]
	e.qryBuf = e.qryBuf[:0]

	out := make([]core.Snapshot, 0, len(e.qrys))
	for qid, q := range e.qrys {
		out = append(out, core.Snapshot{Query: qid, Objects: e.evaluate(q)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// evaluate computes one query's full answer using the grid.
func (e *Engine) evaluate(q *query) []core.ObjectID {
	var out []core.ObjectID
	switch q.kind {
	case core.Range:
		e.g.VisitObjectsIn(q.region, func(id uint64, _ geo.Point) bool {
			out = append(out, core.ObjectID(id))
			return true
		})
	case core.KNN:
		for _, n := range e.g.KNearest(q.focal, q.k, nil) {
			out = append(out, core.ObjectID(n.ID))
		}
	case core.PredictiveRange:
		horizon := e.opt.PredictiveHorizon
		if horizon == 0 {
			horizon = 100
		}
		for oid, o := range e.objs {
			if o.kind != core.Predictive {
				continue
			}
			t1, t2 := q.t1, q.t2
			if t1 < o.t {
				t1 = o.t
			}
			if max := o.t + horizon; t2 > max {
				t2 = max
			}
			if t1 > t2 {
				continue
			}
			m := geo.Motion{Start: o.loc, Vel: o.vel, T0: o.t}
			if m.IntersectsRectDuring(q.region, t1, t2) {
				out = append(out, oid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
