// Package roadnet models the synthetic city road network that underlies
// the workload generator (package gen). It replaces the Brinkhoff
// network-based generator's external map files with a generated city: a
// perturbed lattice of intersections connected by side streets, overlaid
// with a sparser arterial system of main roads and highways, each class
// with its own speed. Shortest routes are computed with Dijkstra over
// travel time.
package roadnet

import (
	"container/heap"
	"fmt"
	"math/rand"

	"cqp/internal/geo"
)

// Class is a road class with an associated travel speed.
type Class uint8

const (
	// Side streets: the dense lattice.
	Side Class = iota
	// Main roads: every few lattice lines.
	Main
	// Highways: the sparse fast grid.
	Highway
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Side:
		return "side"
	case Main:
		return "main"
	case Highway:
		return "highway"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Edge is a directed half-edge in the adjacency list.
type Edge struct {
	To    int     // destination node index
	Class Class   // road class
	Len   float64 // Euclidean length
}

// Network is an undirected road network embedded in the plane.
type Network struct {
	nodes  []geo.Point
	adj    [][]Edge
	speeds [numClasses]float64

	// Spatial bucket index for NearestNode.
	bucketN int
	buckets [][]int
	bwidth  float64
	bheight float64
	extent  geo.Rect
}

// Config parameterizes Generate.
type Config struct {
	// Bounds is the spatial extent of the city. Defaults to the unit
	// square.
	Bounds geo.Rect
	// Lattice is the per-axis intersection count. Defaults to 32.
	Lattice int
	// MainEvery marks every n-th lattice line as a main road. Defaults
	// to 4.
	MainEvery int
	// HighwayEvery marks every n-th lattice line as a highway. Defaults
	// to 8.
	HighwayEvery int
	// Jitter displaces each intersection by up to this fraction of the
	// lattice spacing. Defaults to 0.3.
	Jitter float64
	// PruneSide removes this fraction of side-street edges (connectivity
	// is preserved). Defaults to 0.15.
	PruneSide float64
	// Speeds, by class, in space units per time unit (second). The
	// defaults model a ~100 km metropolitan region mapped onto the
	// bounds: side streets 18 km/h (0.00005/s), main roads 36 km/h
	// (0.0001/s), highways 72 km/h (0.0002/s), scaled to the bounds
	// width. At these speeds an object displaces 0.00025–0.001 of the
	// space per 5-second evaluation period — small against the paper's
	// 0.01–0.04 query sides (1–4 km), which is the regime in which
	// incremental evaluation pays off. The mild (2:1) class ratios also
	// keep route choice from funneling all traffic onto the sparse
	// highways.
	Speeds [3]float64
	// Seed drives the deterministic layout.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Bounds.Empty() {
		c.Bounds = geo.R(0, 0, 1, 1)
	}
	if c.Lattice == 0 {
		c.Lattice = 32
	}
	if c.MainEvery == 0 {
		c.MainEvery = 4
	}
	if c.HighwayEvery == 0 {
		c.HighwayEvery = 8
	}
	if c.Jitter == 0 {
		c.Jitter = 0.3
	}
	if c.PruneSide == 0 {
		c.PruneSide = 0.15
	}
	if c.Speeds == [3]float64{} {
		scale := c.Bounds.Width()
		c.Speeds = [3]float64{0.00005 * scale, 0.0001 * scale, 0.0002 * scale}
	}
	return c
}

// Generate builds a deterministic synthetic city network from cfg. It
// panics on nonsensical configuration (Lattice < 2), which indicates a
// programming error.
func Generate(cfg Config) *Network {
	cfg = cfg.withDefaults()
	k := cfg.Lattice
	if k < 2 {
		panic(fmt.Sprintf("roadnet: lattice must be at least 2, got %d", k))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := &Network{
		nodes: make([]geo.Point, 0, k*k),
	}
	copy(n.speeds[:], cfg.Speeds[:])

	// Place jittered lattice intersections.
	sx := cfg.Bounds.Width() / float64(k)
	sy := cfg.Bounds.Height() / float64(k)
	for row := 0; row < k; row++ {
		for col := 0; col < k; col++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * sx
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * sy
			p := geo.Pt(
				cfg.Bounds.MinX+(float64(col)+0.5)*sx+jx,
				cfg.Bounds.MinY+(float64(row)+0.5)*sy+jy,
			)
			n.nodes = append(n.nodes, p)
		}
	}
	n.adj = make([][]Edge, len(n.nodes))

	classOf := func(line int) Class {
		switch {
		case line%cfg.HighwayEvery == 0:
			return Highway
		case line%cfg.MainEvery == 0:
			return Main
		default:
			return Side
		}
	}

	// Candidate lattice edges: horizontal edges inherit the row's class,
	// vertical edges the column's.
	type cand struct {
		a, b  int
		class Class
	}
	var cands []cand
	id := func(row, col int) int { return row*k + col }
	for row := 0; row < k; row++ {
		for col := 0; col < k; col++ {
			if col+1 < k {
				cands = append(cands, cand{id(row, col), id(row, col+1), classOf(row)})
			}
			if row+1 < k {
				cands = append(cands, cand{id(row, col), id(row+1, col), classOf(col)})
			}
		}
	}

	// Keep arterials unconditionally; prune a fraction of side streets
	// while preserving connectivity with a union-find over kept edges.
	uf := newUnionFind(len(n.nodes))
	addEdge := func(c cand) {
		l := n.nodes[c.a].Dist(n.nodes[c.b])
		n.adj[c.a] = append(n.adj[c.a], Edge{To: c.b, Class: c.class, Len: l})
		n.adj[c.b] = append(n.adj[c.b], Edge{To: c.a, Class: c.class, Len: l})
		uf.union(c.a, c.b)
	}
	var side []cand
	for _, c := range cands {
		if c.class == Side {
			side = append(side, c)
		} else {
			addEdge(c)
		}
	}
	rng.Shuffle(len(side), func(i, j int) { side[i], side[j] = side[j], side[i] })
	pruneBudget := int(cfg.PruneSide * float64(len(side)))
	for _, c := range side {
		if pruneBudget > 0 && uf.find(c.a) == uf.find(c.b) {
			pruneBudget--
			continue // safe to drop: endpoints already connected
		}
		addEdge(c)
	}

	n.buildBuckets(cfg.Bounds)
	return n
}

// NumNodes returns the number of intersections.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the number of undirected road segments.
func (n *Network) NumEdges() int {
	half := 0
	for _, es := range n.adj {
		half += len(es)
	}
	return half / 2
}

// Node returns the location of intersection i.
func (n *Network) Node(i int) geo.Point { return n.nodes[i] }

// Edges returns the adjacency list of intersection i. The slice is shared;
// callers must not modify it.
func (n *Network) Edges(i int) []Edge { return n.adj[i] }

// Speed returns the travel speed of a road class.
func (n *Network) Speed(c Class) float64 { return n.speeds[c] }

// RandomNode returns a uniformly random intersection index.
func (n *Network) RandomNode(rng *rand.Rand) int { return rng.Intn(len(n.nodes)) }

func (n *Network) buildBuckets(bounds geo.Rect) {
	n.extent = bounds
	n.bucketN = 16
	n.bwidth = bounds.Width() / float64(n.bucketN)
	n.bheight = bounds.Height() / float64(n.bucketN)
	n.buckets = make([][]int, n.bucketN*n.bucketN)
	for i, p := range n.nodes {
		bi := n.bucketIndex(p)
		n.buckets[bi] = append(n.buckets[bi], i)
	}
}

func (n *Network) bucketIndex(p geo.Point) int {
	bx := int((p.X - n.extent.MinX) / n.bwidth)
	by := int((p.Y - n.extent.MinY) / n.bheight)
	if bx < 0 {
		bx = 0
	}
	if bx >= n.bucketN {
		bx = n.bucketN - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= n.bucketN {
		by = n.bucketN - 1
	}
	return by*n.bucketN + bx
}

// NearestNode returns the intersection nearest to p, expanding bucket
// rings until a confirmed nearest is found.
func (n *Network) NearestNode(p geo.Point) int {
	bi := n.bucketIndex(p)
	bx, by := bi%n.bucketN, bi/n.bucketN
	best, bestD := -1, 0.0
	for ring := 0; ring < n.bucketN; ring++ {
		for y := by - ring; y <= by+ring; y++ {
			for x := bx - ring; x <= bx+ring; x++ {
				onRing := y == by-ring || y == by+ring || x == bx-ring || x == bx+ring
				if !onRing || x < 0 || x >= n.bucketN || y < 0 || y >= n.bucketN {
					continue
				}
				for _, i := range n.buckets[y*n.bucketN+x] {
					if d := p.Dist2(n.nodes[i]); best == -1 || d < bestD {
						best, bestD = i, d
					}
				}
			}
		}
		// Once we have a candidate and have searched one ring past it, the
		// candidate is confirmed (every unvisited bucket is farther).
		if best != -1 {
			ringDist := float64(ring) * minf(n.bwidth, n.bheight)
			if ringDist*ringDist > bestD {
				break
			}
		}
	}
	return best
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Route returns the sequence of intersections of the fastest (travel
// time) path from src to dst, inclusive of both endpoints. ok is false if
// dst is unreachable.
//
// The search is A* over travel time with the admissible heuristic
// straight-line-distance / fastest-class-speed, which keeps the explored
// frontier a narrow corridor between the endpoints — the generator
// re-routes tens of thousands of travelers, so this matters.
func (n *Network) Route(src, dst int) (path []int, ok bool) {
	if src == dst {
		return []int{src}, true
	}
	const unvisited = -1
	maxSpeed := n.speeds[0]
	for _, s := range n.speeds[1:] {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	target := n.nodes[dst]
	h := func(i int) float64 { return n.nodes[i].Dist(target) / maxSpeed }

	dist := make([]float64, len(n.nodes))
	prev := make([]int, len(n.nodes))
	seen := make([]bool, len(n.nodes))
	for i := range prev {
		prev[i] = unvisited
	}
	pq := &routeQueue{}
	heap.Init(pq)
	heap.Push(pq, routeItem{node: src, dist: h(src)})
	dist[src] = 0
	seen[src] = true

	for pq.Len() > 0 {
		it := heap.Pop(pq).(routeItem)
		if it.node == dst {
			break
		}
		g := dist[it.node]
		if it.dist > g+h(it.node)+1e-12 {
			continue // stale entry
		}
		for _, e := range n.adj[it.node] {
			d := g + e.Len/n.speeds[e.Class]
			if !seen[e.To] || d < dist[e.To] {
				seen[e.To] = true
				dist[e.To] = d
				prev[e.To] = it.node
				heap.Push(pq, routeItem{node: e.To, dist: d + h(e.To)})
			}
		}
	}
	if prev[dst] == unvisited {
		return nil, false
	}
	for at := dst; at != src; at = prev[at] {
		path = append(path, at)
	}
	path = append(path, src)
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}

// EdgeBetween returns the edge from a to b, or false if they are not
// adjacent.
func (n *Network) EdgeBetween(a, b int) (Edge, bool) {
	for _, e := range n.adj[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}

// Connected reports whether every intersection is reachable from node 0.
func (n *Network) Connected() bool {
	if len(n.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(n.nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(n.nodes)
}

type routeItem struct {
	node int
	dist float64
}

type routeQueue []routeItem

func (q routeQueue) Len() int            { return len(q) }
func (q routeQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q routeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *routeQueue) Push(x interface{}) { *q = append(*q, x.(routeItem)) }
func (q *routeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// unionFind is a standard disjoint-set with path compression.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
