package roadnet

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

func BenchmarkRoute(b *testing.B) {
	n := Generate(Config{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := n.RandomNode(rng)
		dst := n.RandomNode(rng)
		if _, ok := n.Route(src, dst); !ok {
			b.Fatal("unroutable pair on connected network")
		}
	}
}

func BenchmarkNearestNode(b *testing.B) {
	n := Generate(Config{Seed: 1})
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.NearestNode(geo.Pt(rng.Float64(), rng.Float64()))
	}
}
