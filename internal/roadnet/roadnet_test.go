package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

func testNet(t *testing.T, seed int64) *Network {
	t.Helper()
	return Generate(Config{Seed: seed})
}

func TestGenerateDefaults(t *testing.T) {
	n := testNet(t, 1)
	if n.NumNodes() != 32*32 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if n.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// All nodes inside the unit square (jitter can push slightly past cell
	// borders but stays within jitter*spacing of them).
	for i := 0; i < n.NumNodes(); i++ {
		p := n.Node(i)
		if p.X < -0.1 || p.X > 1.1 || p.Y < -0.1 || p.Y > 1.1 {
			t.Fatalf("node %d out of range: %v", i, p)
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := Generate(Config{Seed: seed, PruneSide: 0.5})
		if !n.Connected() {
			t.Fatalf("seed %d: network disconnected", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(i) != b.Node(i) {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestGeneratePanicsOnTinyLattice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Config{Lattice: 1})
}

func TestRoadClasses(t *testing.T) {
	n := testNet(t, 2)
	counts := map[Class]int{}
	for i := 0; i < n.NumNodes(); i++ {
		for _, e := range n.Edges(i) {
			counts[e.Class]++
		}
	}
	if counts[Side] == 0 || counts[Main] == 0 || counts[Highway] == 0 {
		t.Fatalf("missing road classes: %v", counts)
	}
	if !(n.Speed(Highway) > n.Speed(Main) && n.Speed(Main) > n.Speed(Side)) {
		t.Fatalf("speed ordering broken: %v %v %v", n.Speed(Highway), n.Speed(Main), n.Speed(Side))
	}
	if Side.String() != "side" || Main.String() != "main" || Highway.String() != "highway" {
		t.Error("Class.String broken")
	}
}

func TestRouteProperties(t *testing.T) {
	n := testNet(t, 3)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		src := n.RandomNode(rng)
		dst := n.RandomNode(rng)
		path, ok := n.Route(src, dst)
		if !ok {
			t.Fatalf("no route %d→%d on connected network", src, dst)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("route endpoints wrong: %v", path)
		}
		// Consecutive nodes must be adjacent.
		for i := 0; i+1 < len(path); i++ {
			if _, ok := n.EdgeBetween(path[i], path[i+1]); !ok {
				t.Fatalf("route step %d→%d not adjacent", path[i], path[i+1])
			}
		}
	}
	// Self route.
	path, ok := n.Route(5, 5)
	if !ok || len(path) != 1 || path[0] != 5 {
		t.Fatalf("self route = %v, %v", path, ok)
	}
}

func TestRouteIsFastest(t *testing.T) {
	// A tiny hand-built check: on a generated network, the Dijkstra travel
	// time must never exceed the direct-edge travel time between adjacent
	// nodes.
	n := testNet(t, 4)
	rng := rand.New(rand.NewSource(2))
	travelTime := func(path []int) float64 {
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			e, _ := n.EdgeBetween(path[i], path[i+1])
			total += e.Len / n.Speed(e.Class)
		}
		return total
	}
	for trial := 0; trial < 50; trial++ {
		src := n.RandomNode(rng)
		for _, e := range n.Edges(src) {
			path, ok := n.Route(src, e.To)
			if !ok {
				t.Fatal("no route to neighbor")
			}
			direct := e.Len / n.Speed(e.Class)
			if travelTime(path) > direct+1e-9 {
				t.Fatalf("route slower than direct edge: %v > %v", travelTime(path), direct)
			}
		}
	}
}

func TestNearestNode(t *testing.T) {
	n := testNet(t, 5)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := geo.Pt(rng.Float64(), rng.Float64())
		got := n.NearestNode(p)
		// Brute force.
		best, bestD := -1, math.Inf(1)
		for i := 0; i < n.NumNodes(); i++ {
			if d := p.Dist2(n.Node(i)); d < bestD {
				best, bestD = i, d
			}
		}
		if p.Dist2(n.Node(got)) > bestD+1e-12 {
			t.Fatalf("NearestNode(%v) = %d (d=%v), brute = %d (d=%v)",
				p, got, p.Dist2(n.Node(got)), best, bestD)
		}
	}
}

func TestEdgeBetween(t *testing.T) {
	n := testNet(t, 6)
	e := n.Edges(0)[0]
	if got, ok := n.EdgeBetween(0, e.To); !ok || got.To != e.To {
		t.Fatal("EdgeBetween adjacent failed")
	}
	// Find a non-adjacent pair.
	adj := map[int]bool{0: true}
	for _, e := range n.Edges(0) {
		adj[e.To] = true
	}
	for i := 0; i < n.NumNodes(); i++ {
		if !adj[i] {
			if _, ok := n.EdgeBetween(0, i); ok {
				t.Fatalf("EdgeBetween(0,%d) should fail", i)
			}
			break
		}
	}
}

func TestCustomBounds(t *testing.T) {
	n := Generate(Config{Bounds: geo.R(0, 0, 100, 50), Lattice: 8, Seed: 9})
	for i := 0; i < n.NumNodes(); i++ {
		p := n.Node(i)
		if p.X < -10 || p.X > 110 || p.Y < -10 || p.Y > 60 {
			t.Fatalf("node %d out of custom bounds: %v", i, p)
		}
	}
	if !n.Connected() {
		t.Fatal("custom-bounds network disconnected")
	}
}

// TestRouteOptimal cross-checks the A* route's travel time against a
// reference Dijkstra run in the test, guarding against an inadmissible
// heuristic regression.
func TestRouteOptimal(t *testing.T) {
	n := testNet(t, 10)
	rng := rand.New(rand.NewSource(4))

	// Reference: textbook Dijkstra from src to all nodes.
	dijkstra := func(src int) []float64 {
		dist := make([]float64, n.NumNodes())
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		visited := make([]bool, n.NumNodes())
		for {
			u, best := -1, math.Inf(1)
			for i, d := range dist {
				if !visited[i] && d < best {
					u, best = i, d
				}
			}
			if u == -1 {
				return dist
			}
			visited[u] = true
			for _, e := range n.Edges(u) {
				if d := dist[u] + e.Len/n.Speed(e.Class); d < dist[e.To] {
					dist[e.To] = d
				}
			}
		}
	}

	travelTime := func(path []int) float64 {
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			e, _ := n.EdgeBetween(path[i], path[i+1])
			total += e.Len / n.Speed(e.Class)
		}
		return total
	}

	for trial := 0; trial < 5; trial++ {
		src := n.RandomNode(rng)
		ref := dijkstra(src)
		for k := 0; k < 20; k++ {
			dst := n.RandomNode(rng)
			path, ok := n.Route(src, dst)
			if !ok {
				t.Fatalf("no route %d→%d", src, dst)
			}
			if got := travelTime(path); math.Abs(got-ref[dst]) > 1e-9 {
				t.Fatalf("%d→%d: A* time %v, Dijkstra %v", src, dst, got, ref[dst])
			}
		}
	}
}
