package obs

import "sync/atomic"

// DurationBuckets are the default bucket upper bounds for latency
// histograms, in nanoseconds: a 1-3-10 ladder from 100µs to 10s. The
// engines' Step latencies span this whole range between laptop tests
// and paper-scale workloads.
var DurationBuckets = []int64{
	100_000,        // 100µs
	300_000,        // 300µs
	1_000_000,      // 1ms
	3_000_000,      // 3ms
	10_000_000,     // 10ms
	30_000_000,     // 30ms
	100_000_000,    // 100ms
	300_000_000,    // 300ms
	1_000_000_000,  // 1s
	3_000_000_000,  // 3s
	10_000_000_000, // 10s
}

// SizeBuckets are the default bucket upper bounds for count-shaped
// histograms (updates per step, answer sizes): a 1-3-10 ladder from 1
// to 1M.
var SizeBuckets = []int64{
	1, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000,
}

// Histogram counts int64 observations into fixed buckets. Bounds are
// inclusive upper limits in ascending order; one implicit overflow
// bucket catches everything beyond the last bound. Observe is a bounds
// scan plus three atomic adds — no allocation, no locks — so it is
// safe on the engines' hot paths and under concurrent tile workers.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	n      atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram returns a detached histogram with the given bucket
// bounds (which must be ascending; DurationBuckets and SizeBuckets are
// ready-made ladders). Registered histograms come from
// Registry.Histogram instead.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation inside the bucket that holds the
// target rank, assuming observations are uniformly spread within each
// bucket — the same estimate Prometheus's histogram_quantile computes.
// The first bucket interpolates from 0, so ladders whose values can sit
// far below the first bound (DurationBuckets at sub-100µs latencies)
// underestimate low quantiles; that is inherent to fixed buckets.
//
// Edge cases: an empty histogram returns 0; q <= 0 returns the lower
// edge of the first occupied bucket; q >= 1 the upper edge of the last
// occupied one; and ranks landing in the overflow bucket return the
// last finite bound, the largest value the ladder can resolve.
//
// Concurrent observers may add counts while Quantile scans; the bucket
// counts are read once into a snapshot, so the estimate is consistent
// with some recent state even mid-burst.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next && i < len(counts)-1 {
			cum = next
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			if len(h.bounds) == 0 {
				return 0
			}
			return float64(h.bounds[len(h.bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(h.bounds[i-1])
		}
		hi := float64(h.bounds[i])
		frac := (rank - cum) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + frac*(hi-lo)
	}
	return 0 // unreachable: total > 0 means some bucket was occupied
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one rendered histogram bucket: the count of observations
// at or below LE that exceeded the previous bound. The overflow bucket
// renders with LE == -1.
type Bucket struct {
	LE int64  `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramValue is the JSON rendering of a histogram: observation
// count, value sum, and the non-empty buckets in bound order.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Value renders the histogram's current state. Empty buckets are
// elided to keep snapshots compact.
func (h *Histogram) Value() HistogramValue {
	out := HistogramValue{Count: h.n.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1) // overflow bucket
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out.Buckets = append(out.Buckets, Bucket{LE: le, N: n})
	}
	return out
}
