// Package obs is the repository's observability substrate: a
// stdlib-only, deterministic, allocation-free-on-the-hot-path metrics
// and tracing layer shared by the evaluation engines, the spatial
// shard router, and the network server.
//
// Design rules, in the order they matter:
//
//   - Hot paths never allocate and never look metrics up by name.
//     Instruments are pre-resolved once at construction time
//     (Registry.Counter and friends) into plain struct fields; updates
//     are single atomic operations.
//
//   - Deterministic packages stay deterministic. Nothing in core,
//     shard, grid, or geo may read the wall clock (the determinism
//     analyzer enforces it), so span timing is driven by an injected
//     Clock: the server and cmd layers pass WallClock, tests pass fake
//     clocks, and a nil Clock disables timing entirely without
//     branching costs elsewhere. WallClock itself lives here — and the
//     determinism analyzer bans calling it from deterministic packages,
//     closing the loophole the injection exists to prevent.
//
//   - Snapshots are reproducible: Snapshot returns metrics keyed by
//     name, and encoding/json marshals map keys in sorted order, so two
//     snapshots of identical state render byte-identically.
//
// A nil *Registry is valid everywhere and returns detached
// instruments: instrumented code is written unconditionally, and an
// engine constructed without a registry pays only the atomic ops.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock returns a monotonic timestamp in nanoseconds. The zero of the
// scale is arbitrary; only differences are meaningful. Deterministic
// packages receive a Clock by injection and never construct one.
type Clock func() int64

// wallStart anchors WallClock so its readings stay small and
// monotonic (time.Since uses the runtime's monotonic clock).
var wallStart = time.Now()

// WallClock is the process wall clock as a Clock. It belongs to the
// server/cmd layer: deterministic packages must receive it as an
// injected value, never call it directly (the determinism analyzer
// rejects direct calls there).
func WallClock() int64 { return int64(time.Since(wallStart)) }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (a level, a high-water mark,
// a last-observed size).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry names and holds instruments and renders deterministic
// snapshots. All methods are safe for concurrent use; a nil *Registry
// hands out detached (unregistered, still functional) instruments.
//
// Requesting an existing name of the same kind returns the shared
// instrument — this is how the sharded engine aggregates across tile
// engines: every tile resolves the same "engine.*" names against the
// same registry and their atomic updates sum naturally. Requesting an
// existing name as a different kind panics: that is a wiring bug, not
// a runtime condition.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later bounds are ignored
// for an existing name). A nil registry returns a detached histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.mustBeFree(name, "histogram")
	h := NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// mustBeFree panics if name is already registered as another kind.
// Callers hold r.mu.
func (r *Registry) mustBeFree(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic("obs: metric " + name + " already registered as a counter, requested as " + kind)
	}
	if _, ok := r.gauges[name]; ok {
		panic("obs: metric " + name + " already registered as a gauge, requested as " + kind)
	}
	if _, ok := r.histograms[name]; ok {
		panic("obs: metric " + name + " already registered as a histogram, requested as " + kind)
	}
}

// Snapshot returns the current value of every registered instrument,
// keyed by name: counters as uint64, gauges as int64, histograms as
// HistogramValue. encoding/json renders map keys sorted, so marshaling
// a snapshot is deterministic.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Value()
	}
	return out
}

// Flatten returns every metric as one number per name: counters and
// gauges verbatim, histograms expanded to <name>.count and <name>.sum.
// It is the shape the benchmark harness appends to its JSON records.
func (r *Registry) Flatten() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.histograms {
		v := h.Value()
		out[name+".count"] = float64(v.Count)
		out[name+".sum"] = float64(v.Sum)
	}
	return out
}
