package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves a registry over HTTP: an expvar-style JSON snapshot
// at /metrics (and at /, for curl convenience) plus the standard
// net/http/pprof endpoints under /debug/pprof/. It is what
// `cqp-server -metrics addr` mounts.
//
// The snapshot is marshaled fresh per request; metric reads are atomic
// loads, so scraping never blocks evaluation.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	snapshot := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	}
	mux.HandleFunc("/metrics", snapshot)
	mux.HandleFunc("/{$}", snapshot)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// LogLoop writes a compact JSON snapshot of r through logf every
// interval until stop is closed. cqp-server runs it as its periodic
// snapshot logger (`-metrics-log`); it is exported so other binaries
// and tests can reuse it.
func LogLoop(r *Registry, interval time.Duration, logf func(format string, args ...any), stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			data, err := json.Marshal(r.Snapshot())
			if err != nil {
				logf("obs: snapshot: %v", err)
				continue
			}
			logf("metrics %s", data)
		}
	}
}
