package obs

// Tracer times spans against an injected Clock and records their
// durations into histograms. It is the only timing primitive the
// deterministic packages use: an engine constructed without a clock
// (the default, and what every replay-exactness test uses) traces
// nothing and behaves identically, because tracing never feeds back
// into evaluation.
//
// Usage is two calls around the span with no intermediate state
// beyond an int64 on the caller's stack, so tracing is allocation-free:
//
//	begin := tracer.Begin()
//	... the span ...
//	tracer.End(stepLatency, begin)
//
// A nil *Tracer or a Tracer with a nil clock is inert.
type Tracer struct {
	clock Clock
}

// NewTracer returns a tracer over clock. A nil clock yields an inert
// tracer.
func NewTracer(clock Clock) *Tracer { return &Tracer{clock: clock} }

// Enabled reports whether the tracer will record anything.
func (t *Tracer) Enabled() bool { return t != nil && t.clock != nil }

// Begin returns the span start timestamp, or 0 when inert.
func (t *Tracer) Begin() int64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// End records the elapsed nanoseconds since begin into h. Inert
// tracers record nothing.
func (t *Tracer) End(h *Histogram, begin int64) {
	if t == nil || t.clock == nil {
		return
	}
	h.Observe(t.clock() - begin)
}

// Since returns the elapsed nanoseconds since begin without recording,
// for callers that fold the duration into their own arithmetic (the
// shard router's step-skew computation). Inert tracers return 0.
func (t *Tracer) Since(begin int64) int64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock() - begin
}
