package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.SetMax(5) // below current: no-op
	if got := g.Value(); got != 7 {
		t.Errorf("SetMax(5) lowered the gauge to %d", got)
	}
	g.SetMax(100)
	if got := g.Value(); got != 100 {
		t.Errorf("SetMax(100) = %d, want 100", got)
	}
}

// TestRegistrySharing pins the aggregation contract the sharded engine
// relies on: the same name resolves to the same instrument, so N tile
// engines incrementing "engine.steps" sum into one counter.
func TestRegistrySharing(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name resolved to distinct counters")
	}
	a.Inc()
	b.Inc()
	if got := r.Counter("x").Value(); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name resolved to distinct gauges")
	}
	h := r.Histogram("h", SizeBuckets)
	// Later bounds are ignored for an existing name.
	if r.Histogram("h", DurationBuckets) != h {
		t.Error("same name resolved to distinct histograms")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

// TestNilRegistryDetached: a nil *Registry hands out functional
// detached instruments, so instrumented code never branches on
// "metrics configured?".
func TestNilRegistryDetached(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if got := c.Value(); got != 1 {
		t.Errorf("detached counter = %d, want 1", got)
	}
	r.Gauge("g").Set(5)
	r.Histogram("h", SizeBuckets).Observe(3)
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot is non-empty")
	}
	if len(r.Flatten()) != 0 {
		t.Error("nil registry Flatten is non-empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(5)    // bucket le=10
	h.Observe(10)   // bounds are inclusive: still le=10
	h.Observe(11)   // le=100
	h.Observe(1000) // overflow
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 1026 {
		t.Errorf("sum = %d, want 1026", got)
	}
	v := h.Value()
	want := []Bucket{{LE: 10, N: 2}, {LE: 100, N: 1}, {LE: -1, N: 1}}
	if len(v.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", v.Buckets, want)
	}
	for i := range want {
		if v.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, v.Buckets[i], want[i])
		}
	}
}

func TestHistogramElidesEmptyBuckets(t *testing.T) {
	h := NewHistogram(SizeBuckets)
	h.Observe(2) // only the le=3 bucket fills
	v := h.Value()
	if len(v.Buckets) != 1 || v.Buckets[0].LE != 3 {
		t.Errorf("buckets = %+v, want exactly [{3 1}]", v.Buckets)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestTracer(t *testing.T) {
	// Inert forms: nil tracer and nil clock both record nothing.
	var nilTracer *Tracer
	h := NewHistogram(DurationBuckets)
	nilTracer.End(h, nilTracer.Begin())
	NewTracer(nil).End(h, 0)
	if nilTracer.Enabled() || NewTracer(nil).Enabled() {
		t.Error("inert tracer claims Enabled")
	}
	if h.Count() != 0 {
		t.Errorf("inert tracers recorded %d observations", h.Count())
	}

	// Live form against a fake clock: each reading advances 1ms, so a
	// Begin/End pair spans exactly 1ms.
	var now int64
	tr := NewTracer(func() int64 { now += 1_000_000; return now })
	if !tr.Enabled() {
		t.Fatal("tracer with a clock is not Enabled")
	}
	begin := tr.Begin()
	tr.End(h, begin)
	if h.Count() != 1 || h.Sum() != 1_000_000 {
		t.Errorf("span recorded count=%d sum=%d, want 1 and 1000000", h.Count(), h.Sum())
	}
	if d := tr.Since(tr.Begin()); d != 1_000_000 {
		t.Errorf("Since = %d, want 1000000", d)
	}
}

// TestSnapshotJSONDeterministic: two marshals of identical registry
// state are byte-identical (encoding/json sorts map keys), which is
// what makes logged snapshots diffable.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("z.level").Set(-4)
	r.Histogram("m.lat", DurationBuckets).Observe(2_000_000)

	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(r.Snapshot())
	if string(j1) != string(j2) {
		t.Errorf("snapshots differ:\n%s\n%s", j1, j2)
	}
	if !strings.Contains(string(j1), `"a.count":1`) {
		t.Errorf("snapshot missing a.count: %s", j1)
	}
}

func TestFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", SizeBuckets).Observe(7)
	r.Histogram("h", SizeBuckets).Observe(5)
	flat := r.Flatten()
	for k, want := range map[string]float64{"c": 3, "g": -2, "h.count": 2, "h.sum": 12} {
		if flat[k] != want {
			t.Errorf("Flatten[%q] = %v, want %v", k, flat[k], want)
		}
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.steps").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		res.Body.Close()
		if ct := res.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q", path, ct)
		}
		if m["engine.steps"] != float64(9) {
			t.Errorf("GET %s engine.steps = %v, want 9", path, m["engine.steps"])
		}
	}

	// pprof rides along on the same mux.
	res, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Errorf("pprof cmdline status = %d", res.StatusCode)
	}
}

func TestLogLoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	var (
		mu    sync.Mutex
		lines []string
	)
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
		_ = args
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		LogLoop(r, time.Millisecond, logf, stop)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("LogLoop emitted fewer than 2 snapshots in 2s")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done
}

// TestConcurrentInstruments runs every mutation under the race
// detector: instruments must be safe under concurrent tile workers and
// a scraping HTTP handler.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", SizeBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.SetMax(int64(j))
				h.Observe(int64(j))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Errorf("concurrent SetMax = %d, want 999", got)
	}
	if got := r.Histogram("h", SizeBuckets).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}
