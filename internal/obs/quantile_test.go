package obs

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestQuantileUniform pins the interpolation against a uniform fill: one
// observation per integer 1..100 over decade-free bounds 10,20,...,100.
// Every bucket holds exactly 10 observations, so the q-quantile is
// exactly 100q.
func TestQuantileUniform(t *testing.T) {
	bounds := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		almost(t, "Quantile", h.Quantile(q), 100*q)
	}
	almost(t, "Quantile(0)", h.Quantile(0), 0)
}

// TestQuantileSkewed pins a known two-bucket split: 90 observations in
// (0,10], 10 in (10,20]. p50 lands mid-first-bucket, p95 mid-second.
func TestQuantileSkewed(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	// rank(0.5) = 50 of 90 in bucket 0 → 10 * 50/90.
	almost(t, "p50", h.Quantile(0.5), 10*50.0/90)
	// rank(0.95) = 95: 5 into the 10-count second bucket → 10 + 10*5/10.
	almost(t, "p95", h.Quantile(0.95), 15)
	// rank(0.9) = 90: exactly exhausts bucket 0 → its upper edge.
	almost(t, "p90", h.Quantile(0.9), 10)
}

// TestQuantileEdgeCases covers the degenerate shapes: empty histogram,
// all mass in a single bucket, all mass in the overflow bucket, and
// out-of-range q.
func TestQuantileEdgeCases(t *testing.T) {
	// Empty: no observations, every quantile is 0.
	h := NewHistogram([]int64{10, 20})
	almost(t, "empty p50", h.Quantile(0.5), 0)

	// Single bucket occupied: interpolation spans that bucket only.
	h = NewHistogram([]int64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(12)
	}
	almost(t, "single-bucket p0", h.Quantile(0), 10)
	almost(t, "single-bucket p50", h.Quantile(0.5), 15)
	almost(t, "single-bucket p100", h.Quantile(1), 20)

	// Overflow bucket: values beyond the last bound clamp to it — the
	// ladder cannot resolve anything larger.
	h = NewHistogram([]int64{10, 20})
	h.Observe(1000)
	h.Observe(5000)
	almost(t, "overflow p50", h.Quantile(0.5), 20)
	almost(t, "overflow p99", h.Quantile(0.99), 20)

	// Mixed: half in a finite bucket, half overflowing. p25 interpolates
	// the finite bucket; p75 clamps to the last bound.
	h = NewHistogram([]int64{10, 20})
	h.Observe(5)
	h.Observe(5)
	h.Observe(1000)
	h.Observe(1000)
	almost(t, "mixed p25", h.Quantile(0.25), 5)
	almost(t, "mixed p75", h.Quantile(0.75), 20)

	// q outside [0,1] clamps.
	almost(t, "q<0", h.Quantile(-1), h.Quantile(0))
	almost(t, "q>1", h.Quantile(2), h.Quantile(1))
}

// TestQuantileSingleBoundLadder exercises the smallest legal ladder: one
// finite bound plus the implicit overflow.
func TestQuantileSingleBoundLadder(t *testing.T) {
	h := NewHistogram([]int64{100})
	for i := 0; i < 10; i++ {
		h.Observe(int64(i * 10)) // all ≤ 100
	}
	almost(t, "p50", h.Quantile(0.5), 50)
	h.Observe(900) // one overflow
	almost(t, "p100", h.Quantile(1), 100)
}
