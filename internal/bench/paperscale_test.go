package bench

import (
	"fmt"
	"os"
	"testing"
)

// TestPaperScalePoint runs one Figure-5(a) point at the paper's full
// 100K × 100K scale. It is far too heavy for routine test runs, so it
// only executes when CQP_PAPER_SCALE=1.
func TestPaperScalePoint(t *testing.T) {
	if os.Getenv("CQP_PAPER_SCALE") != "1" {
		t.Skip("set CQP_PAPER_SCALE=1 to run the paper-scale measurement")
	}
	cfg := Fig5Config{
		Objects: 100000, Queries: 100000,
		Ticks: 2, Warmup: 1, Rate: 0.3, QueryRate: 0.3,
		QuerySide: 0.01, Seed: 1,
	}.WithDefaults()
	r := RunFig5Point(cfg)
	fmt.Printf("PAPER-SCALE fig5a point (rate 30%%, side 0.01):\n")
	fmt.Printf("  incremental %.1f KB/eval, complete %.1f KB/eval, ratio %.1f%%, step %.0f ms\n",
		r.IncrementalKB, r.CompleteKB, 100*r.IncrementalKB/r.CompleteKB, r.StepMillis)
}
