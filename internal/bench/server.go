package bench

import (
	"fmt"
	"runtime"
	"time"

	"cqp/internal/loadgen"
	"cqp/internal/obs"
)

// ServerPoint is one measured rate of the server-capacity experiment:
// the full wire stack (server, sessions, framed protocol, subscriber
// clients) held under open-loop load at a fixed offered rate, reporting
// delivery-latency percentiles and the shed/drop counters.
type ServerPoint struct {
	OfferedRate   float64 `json:"offered_rate"`
	AchievedRate  float64 `json:"achieved_rate"`
	ObjectReports uint64  `json:"object_reports"`
	QueryReports  uint64  `json:"query_reports"`
	Delivered     uint64  `json:"delivered"`

	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxLagMs float64 `json:"max_lag_ms"`

	Sheds       uint64 `json:"sheds"`
	Dropped     uint64 `json:"outbox_dropped"`
	FullAnswers uint64 `json:"full_answers"`

	// Metrics is the final flattened registry snapshot of the point's
	// run: engine, server session, client, and load instruments in one
	// view (the harness shares one registry across all tiers).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ServerRun is one appended entry of BENCH_server.json: a labelled
// rate-vs-latency curve plus the measured shed point, with the
// environment recorded the way BENCH_core.json and BENCH_shard.json do.
type ServerRun struct {
	Label       string  `json:"label"`
	When        string  `json:"when,omitempty"`
	Scenario    string  `json:"scenario"`
	Sessions    int     `json:"sessions"`
	Objects     int     `json:"objects"`
	Queries     int     `json:"queries"`
	DurationSec float64 `json:"duration_sec"`
	SLOMs       float64 `json:"slo_ms"`

	Points []ServerPoint `json:"points"`

	// ShedPoint is the offered rate (reports/sec) at which the doubling
	// probe first saw the server saturate: a session shed, a dropped
	// frame, the achieved rate falling under 90% of offered, or p99
	// blowing through the SLO. Zero when the probe was skipped or never
	// saturated within its range.
	ShedPoint float64 `json:"shed_point,omitempty"`

	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Hardware   string `json:"hardware,omitempty"`
}

// ServerSweepConfig parameterizes RunServerSweep. Zero fields take the
// documented defaults.
type ServerSweepConfig struct {
	Scenario  string        // movement preset (default fleet)
	Rates     []float64     // offered rates to measure (default 200, 400, 800)
	Duration  time.Duration // paced phase per point (default 2s)
	Sessions  int           // concurrent client sessions (default 4)
	Objects   int           // object population (default 500)
	Queries   int           // query population (default 50)
	QuerySide float64       // query square side (default 0.05)
	TimeScale float64       // scenario seconds per wall second (default 100)
	Seed      int64         // default 1
	SLO       time.Duration // p99 target used by the shed probe (default 1s)

	// ProbeShed, when true, follows the sweep with a doubling probe
	// from the last rate to locate the shed point.
	ProbeShed bool
}

func (c ServerSweepConfig) withDefaults() ServerSweepConfig {
	if c.Scenario == "" {
		c.Scenario = "fleet"
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{200, 400, 800}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Objects <= 0 {
		c.Objects = 500
	}
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.QuerySide <= 0 {
		c.QuerySide = 0.05
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SLO <= 0 {
		c.SLO = time.Second
	}
	return c
}

// harnessConfig maps one sweep point onto a loadgen config. Every point
// gets a fresh registry and in-process server, so points are
// independent measurements.
func (c ServerSweepConfig) harnessConfig(rate float64) loadgen.Config {
	return loadgen.Config{
		Rate:         rate,
		Duration:     c.Duration,
		Sessions:     c.Sessions,
		Objects:      c.Objects,
		Queries:      c.Queries,
		Scenario:     c.Scenario,
		QuerySide:    c.QuerySide,
		TimeScale:    c.TimeScale,
		Seed:         c.Seed,
		EvalInterval: 10 * time.Millisecond,
		Metrics:      obs.NewRegistry(),
	}
}

// RunServerPoint measures one offered rate end to end: run the paced
// phase, quiesce, and snapshot.
func RunServerPoint(cfg ServerSweepConfig, rate float64) (ServerPoint, error) {
	cfg = cfg.withDefaults()
	h, err := loadgen.New(cfg.harnessConfig(rate))
	if err != nil {
		return ServerPoint{}, err
	}
	defer h.Close()
	res, err := h.Run()
	if err != nil {
		return ServerPoint{}, err
	}
	h.Converge(10 * time.Second)
	res = h.Result(res.Elapsed)
	return ServerPoint{
		OfferedRate:   res.Offered,
		AchievedRate:  res.Achieved,
		ObjectReports: res.ObjectReports,
		QueryReports:  res.QueryReports,
		Delivered:     res.Delivered,
		P50Ms:         float64(res.P50) / 1e6,
		P95Ms:         float64(res.P95) / 1e6,
		P99Ms:         float64(res.P99) / 1e6,
		MaxLagMs:      float64(res.MaxLag) / 1e6,
		Sheds:         res.Sheds,
		Dropped:       res.Dropped,
		FullAnswers:   res.FullAnswers,
		Metrics:       h.Registry().Flatten(),
	}, nil
}

// saturated is the shed-probe's stop predicate.
func saturated(p ServerPoint, slo time.Duration) bool {
	return p.Sheds > 0 || p.Dropped > 0 ||
		p.AchievedRate < 0.9*p.OfferedRate ||
		p.P99Ms > float64(slo)/1e6
}

// FindShedPoint doubles the offered rate from start until the server
// saturates (see ServerRun.ShedPoint for the criteria) and returns the
// first saturating rate, or 0 if none within 2^12×start.
func FindShedPoint(cfg ServerSweepConfig, start float64) (float64, error) {
	cfg = cfg.withDefaults()
	// Probe points are short: the knee shows up quickly, and the sweep
	// already measured the sustained behavior below it.
	cfg.Duration = cfg.Duration / 2
	if cfg.Duration < 500*time.Millisecond {
		cfg.Duration = 500 * time.Millisecond
	}
	for rate, i := start, 0; i < 12; rate, i = rate*2, i+1 {
		p, err := RunServerPoint(cfg, rate)
		if err != nil {
			return 0, err
		}
		if saturated(p, cfg.SLO) {
			return rate, nil
		}
	}
	return 0, nil
}

// RunServerSweep measures every configured rate and, when ProbeShed is
// set, locates the shed point beyond them.
func RunServerSweep(cfg ServerSweepConfig, label string) (ServerRun, error) {
	cfg = cfg.withDefaults()
	run := ServerRun{
		Label:       label,
		Scenario:    cfg.Scenario,
		Sessions:    cfg.Sessions,
		Objects:     cfg.Objects,
		Queries:     cfg.Queries,
		DurationSec: cfg.Duration.Seconds(),
		SLOMs:       float64(cfg.SLO) / 1e6,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Hardware:    hardwareNote(),
	}
	for _, rate := range cfg.Rates {
		p, err := RunServerPoint(cfg, rate)
		if err != nil {
			return run, fmt.Errorf("bench: server point at %g/s: %w", rate, err)
		}
		run.Points = append(run.Points, p)
	}
	if cfg.ProbeShed {
		start := cfg.Rates[len(cfg.Rates)-1] * 2
		shed, err := FindShedPoint(cfg, start)
		if err != nil {
			return run, fmt.Errorf("bench: shed probe: %w", err)
		}
		run.ShedPoint = shed
	}
	return run, nil
}
