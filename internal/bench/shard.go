package bench

import (
	"fmt"
	"runtime"
	"time"

	"cqp/internal/core"
	"cqp/internal/gen"
	"cqp/internal/geo"
	"cqp/internal/obs"
	"cqp/internal/roadnet"
	"cqp/internal/shard"
)

// ShardResult is one point of the shard-scaling sweep: the same fixed
// workload evaluated by a processor with the given shard count.
type ShardResult struct {
	Shards  int     `json:"shards"`
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	StepMS  float64 `json:"step_ms"` // avg Step latency per tick
	Updates float64 `json:"updates"` // avg updates emitted per tick
	Objects int     `json:"objects"` // workload population
	Queries int     `json:"queries"` // workload population

	// GOMAXPROCS and NumCPU record the parallelism available to the
	// run, and Hardware interprets them: on a single-CPU host the tile
	// goroutines serialize, so any speedup over one shard comes from
	// work reduction (tile-local grids, single-replica merge bypass),
	// not parallel evaluation. Comparisons across BENCH_shard.json
	// revisions are only meaningful at equal GOMAXPROCS.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Hardware   string `json:"hardware,omitempty"`

	// Metrics is the final flattened snapshot of the point's metrics
	// registry: engine counters aggregated across tiles plus the
	// router's shard.* merge and skew metrics.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// hardwareNote describes the execution environment of a sweep point.
func hardwareNote() string {
	note := fmt.Sprintf("go %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if runtime.GOMAXPROCS(0) == 1 {
		note += "; GOMAXPROCS=1: parallel stages (tiles, join workers) serialize, speedup is work reduction only"
	}
	return note
}

// RunShardSweep measures the average Step time across shard counts on
// an identical road-network workload. Count 1 runs the plain single
// engine (the server's Shards=1 path); larger counts run the spatially
// sharded engine from internal/shard.
func RunShardSweep(cfg Fig5Config, counts []int) []ShardResult {
	cfg = cfg.WithDefaults()
	out := make([]ShardResult, 0, len(counts))
	for _, n := range counts {
		net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
		world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
		wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
		scatter(wl)

		reg := obs.NewRegistry()
		copt := core.Options{
			Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN,
			Metrics: reg, Clock: obs.WallClock,
		}
		var (
			proc core.Processor
			rows = 1
			cols = 1
		)
		if n > 1 {
			se, err := shard.NewN(copt, n)
			if err != nil {
				panic(err)
			}
			defer se.Close()
			rows, cols = shard.Split(n)
			proc = se
		} else {
			proc = core.MustNewEngine(copt)
		}

		wl.Bootstrap(proc)
		proc.Step(world.Now())

		total, updates := 0.0, 0
		var buf []core.Update
		for tick := 0; tick < cfg.Ticks; tick++ {
			wl.Tick(proc, cfg.DT, cfg.Rate, cfg.QueryRate)
			start := time.Now()
			buf = proc.StepAppend(buf[:0], world.Now())
			updates += len(buf)
			total += msSince(start)
		}
		out = append(out, ShardResult{
			Shards:     n,
			Rows:       rows,
			Cols:       cols,
			StepMS:     total / float64(cfg.Ticks),
			Updates:    float64(updates) / float64(cfg.Ticks),
			Objects:    cfg.Objects,
			Queries:    cfg.Queries,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Hardware:   hardwareNote(),
			Metrics:    reg.Flatten(),
		})
	}
	return out
}
