package bench

import (
	"runtime"
	"time"

	"cqp/internal/core"
	"cqp/internal/gen"
	"cqp/internal/geo"
	"cqp/internal/obs"
	"cqp/internal/roadnet"
)

// CorePoint is one measured configuration of the single-engine core
// benchmark: steady-state Step cost on the road-network workload,
// reported in the units a testing.B benchmark would print (ns/op, B/op,
// allocs/op, with one Step as the op).
type CorePoint struct {
	Name           string  `json:"name"`
	Objects        int     `json:"objects"`
	Queries        int     `json:"queries"`
	GridN          int     `json:"grid_n"`
	Ticks          int     `json:"ticks"`
	Seed           int64   `json:"seed"`
	NsPerStep      float64 `json:"ns_per_step"`
	BytesPerStep   float64 `json:"bytes_per_step"`
	AllocsPerStep  float64 `json:"allocs_per_step"`
	UpdatesPerStep float64 `json:"updates_per_step"`

	// Parallelism is the engine's configured join worker count (0 =
	// serial path). GOMAXPROCS and NumCPU record the parallelism the
	// host actually offered, and Hardware interprets them, matching
	// BENCH_shard.json: on a single-CPU host the join workers
	// serialize, so a parallel run's gain over serial is work
	// reduction, not concurrency. Comparisons across BENCH_core.json
	// revisions are only meaningful at equal GOMAXPROCS.
	Parallelism int    `json:"parallelism"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`
	Hardware    string `json:"hardware,omitempty"`

	// Metrics is the final flattened snapshot of the point's metrics
	// registry (the engine runs fully instrumented, clock included), so
	// each BENCH record carries the observability view of its own run:
	// counter totals plus histogram count/sum pairs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// CoreRun is one appended entry of BENCH_core.json: a labelled sweep over
// the small/medium/paper-scale points on identical workload parameters,
// so before/after runs of the same sweep are directly comparable.
type CoreRun struct {
	Label  string      `json:"label"`
	When   string      `json:"when,omitempty"`
	Points []CorePoint `json:"points"`
}

// CoreSweepSizes are the populations of the core benchmark sweep: two
// laptop-scale points plus the 20K x 20K scale the shard experiment
// (BENCH_shard.json) uses, so the single-engine trajectory and the
// shard-scaling trajectory share an anchor point.
var CoreSweepSizes = []struct {
	Name    string
	Objects int
	Queries int
}{
	{"small", 2000, 2000},
	{"medium", 8000, 8000},
	{"paper", 20000, 20000},
}

// RunCoreSweep measures every core sweep point with the base config's
// tick count, rate, and seed. Only the population varies per point; all
// other parameters come from cfg so runs recorded under different labels
// stay comparable.
func RunCoreSweep(cfg Fig5Config) []CorePoint {
	cfg = cfg.WithDefaults()
	out := make([]CorePoint, 0, len(CoreSweepSizes))
	for _, s := range CoreSweepSizes {
		c := cfg
		c.Objects = s.Objects
		c.Queries = s.Queries
		out = append(out, runCorePoint(s.Name, c))
	}
	return out
}

// runCorePoint measures one population on the Figure-5 road workload:
// bootstrap, warm up, then time cfg.Ticks Steps, counting heap bytes and
// mallocs around each measured Step only (the workload generator's own
// allocations are excluded). The runtime counters are monotonic, so a GC
// during a Step does not skew them.
func runCorePoint(name string, cfg Fig5Config) CorePoint {
	net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
	world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
	wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
	scatter(wl)

	// Benchmarks run fully instrumented — registry and clock both on —
	// so the reported costs are the costs of the observable engine, and
	// the final snapshot rides along in the JSON record.
	reg := obs.NewRegistry()
	engine := core.MustNewEngine(core.Options{
		Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN,
		Parallelism: cfg.Parallelism,
		Metrics:     reg, Clock: obs.WallClock,
	})
	wl.Bootstrap(engine)
	engine.Step(world.Now())
	for i := 0; i < cfg.Warmup; i++ {
		wl.Tick(engine, cfg.DT, cfg.Rate, cfg.QueryRate)
		engine.Step(world.Now())
	}

	var (
		ns      int64
		bytes   uint64
		mallocs uint64
		updates int
		buf     []core.Update
		before  runtime.MemStats
		after   runtime.MemStats
	)
	for i := 0; i < cfg.Ticks; i++ {
		wl.Tick(engine, cfg.DT, cfg.Rate, cfg.QueryRate)
		runtime.ReadMemStats(&before)
		start := time.Now()
		// StepAppend into a reused buffer: the measured tick excludes
		// the per-call output allocation Step's contract imposes.
		buf = engine.StepAppend(buf[:0], world.Now())
		updates += len(buf)
		ns += time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		bytes += after.TotalAlloc - before.TotalAlloc
		mallocs += after.Mallocs - before.Mallocs
	}
	n := float64(cfg.Ticks)
	return CorePoint{
		Name:           name,
		Objects:        cfg.Objects,
		Queries:        cfg.Queries,
		GridN:          cfg.GridN,
		Ticks:          cfg.Ticks,
		Seed:           cfg.Seed,
		NsPerStep:      float64(ns) / n,
		BytesPerStep:   float64(bytes) / n,
		AllocsPerStep:  float64(mallocs) / n,
		UpdatesPerStep: float64(updates) / n,
		Parallelism:    cfg.Parallelism,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Hardware:       hardwareNote(),
		Metrics:        reg.Flatten(),
	}
}
