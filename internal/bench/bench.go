// Package bench implements the measurement harnesses that regenerate the
// paper's evaluation (Figure 5) and the ablation experiments documented
// in DESIGN.md. The same code backs the cqp-bench command and the root
// bench_test.go benchmarks, so the tables in EXPERIMENTS.md and the
// testing.B numbers come from one implementation.
package bench

import (
	"time"

	"cqp/internal/baseline/qindex"
	"cqp/internal/baseline/snapshot"
	"cqp/internal/baseline/vci"
	"cqp/internal/core"
	"cqp/internal/gen"
	"cqp/internal/geo"
	"cqp/internal/roadnet"
	"cqp/internal/wire"
)

// Fig5Config parameterizes the paper's Figure 5 experiment: a
// network-based workload of moving objects and moving square queries,
// evaluated every DT seconds, measuring the bytes the server would
// transmit per evaluation under (a) the incremental update stream and
// (b) complete-answer retransmission.
type Fig5Config struct {
	Objects   int     // moving object population (paper: 100K)
	Queries   int     // moving query population (paper: 100K)
	GridN     int     // grid cells per axis
	QuerySide float64 // query square side (paper: 0.01–0.04)
	Rate      float64 // fraction of objects moving+reporting per period (paper Fig 5a x-axis)
	QueryRate float64 // fraction of queries moving+reporting per period (defaults to 0.3)
	Ticks     int     // measured evaluation periods
	Warmup    int     // unmeasured leading periods
	DT        float64 // seconds per period (paper: 5)
	Seed      int64

	// Parallelism is the engine's join-phase worker count for
	// experiments that honor it (the core sweep); 0 keeps the serial
	// engine. Sweeps that vary the worker count themselves
	// (RunParallelSweep) take an explicit list instead.
	Parallelism int
}

// WithDefaults fills the zero fields with the laptop-scale defaults used
// throughout EXPERIMENTS.md (the paper scale is reachable with
// cqp-bench -paper-scale).
func (c Fig5Config) WithDefaults() Fig5Config {
	if c.Objects == 0 {
		c.Objects = 20000
	}
	if c.Queries == 0 {
		c.Queries = 20000
	}
	if c.GridN == 0 {
		c.GridN = 64
	}
	if c.QuerySide == 0 {
		c.QuerySide = 0.01
	}
	if c.Rate == 0 {
		c.Rate = 0.3
	}
	if c.QueryRate == 0 {
		c.QueryRate = 0.3
	}
	if c.Ticks == 0 {
		c.Ticks = 10
	}
	if c.Warmup == 0 {
		c.Warmup = 3
	}
	if c.DT == 0 {
		c.DT = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig5Result is one point of Figure 5: the average per-evaluation answer
// traffic under the two strategies.
type Fig5Result struct {
	IncrementalKB float64 // avg KB/evaluation of the update stream
	CompleteKB    float64 // avg KB/evaluation of complete answers
	Updates       float64 // avg update tuples/evaluation
	AnswerTuples  float64 // avg total answer cardinality
	StepMillis    float64 // avg engine Step wall time
}

// scatter spreads freshly created populations along the road edges:
// travelers start exactly on intersections, which would otherwise inflate
// initial query answers with co-located clusters.
func scatter(wl *gen.Workload) {
	wl.World.Advance(3600)
	wl.Queries.Advance(3600)
}

// RunFig5Point measures one configuration point.
func RunFig5Point(cfg Fig5Config) Fig5Result {
	cfg = cfg.WithDefaults()
	net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
	world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
	wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
	scatter(wl)

	engine := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN})
	wl.Bootstrap(engine)
	engine.Step(world.Now())
	for i := 0; i < cfg.Warmup; i++ {
		wl.Tick(engine, cfg.DT, cfg.Rate, cfg.QueryRate)
		engine.Step(world.Now())
	}

	var res Fig5Result
	for i := 0; i < cfg.Ticks; i++ {
		wl.Tick(engine, cfg.DT, cfg.Rate, cfg.QueryRate)
		start := time.Now()
		updates := engine.Step(world.Now())
		res.StepMillis += float64(time.Since(start).Microseconds()) / 1000

		res.Updates += float64(len(updates))
		res.IncrementalKB += float64(wire.EncodedSize(wire.UpdateBatch{Updates: updates})) / 1024

		// What the naive server would send instead: every query's complete
		// answer, every period.
		for j := 0; j < cfg.Queries; j++ {
			ans, _ := engine.Answer(core.QueryID(j + 1))
			res.AnswerTuples += float64(len(ans))
			res.CompleteKB += float64(wire.EncodedSize(wire.FullAnswer{
				Query: core.QueryID(j + 1), Objects: ans,
			})) / 1024
		}
	}
	n := float64(cfg.Ticks)
	res.IncrementalKB /= n
	res.CompleteKB /= n
	res.Updates /= n
	res.AnswerTuples /= n
	res.StepMillis /= n
	return res
}

// --- Ablation 1 & 2 & 4: evaluation-strategy CPU comparison --------------

// StrategyResult compares engine strategies on one identical workload.
type StrategyResult struct {
	IncrementalMillis float64 // shared incremental engine, avg Step ms
	SnapshotMillis    float64 // snapshot re-evaluation baseline, avg Step ms
	QIndexMillis      float64 // Q-index baseline (stationary queries only); 0 if skipped
	VCIMillis         float64 // velocity-constrained index baseline (stationary queries only); 0 if skipped
}

// RunStrategyComparison drives the incremental engine, the snapshot
// baseline, and (when stationaryQueries is true) the Q-index baseline
// with an identical report stream and returns average per-evaluation CPU
// times.
func RunStrategyComparison(cfg Fig5Config, stationaryQueries bool) StrategyResult {
	cfg = cfg.WithDefaults()
	net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
	world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
	wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
	scatter(wl)

	inc := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN})
	snap, err := snapshot.New(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN})
	if err != nil {
		panic(err)
	}
	var qi *qindex.Engine
	var vc *vci.Engine
	if stationaryQueries {
		qi = qindex.New()
		// Speed bound: the network's fastest class; rebuild every 12
		// evaluation periods.
		vc = vci.New(net.Speed(roadnet.Highway), 12*cfg.DT)
	}

	sinks := []gen.Sink{inc, snap}
	if qi != nil {
		sinks = append(sinks, qi, vc)
	}
	fan := fanout{sinks}
	wl.Bootstrap(fan)
	queryRate := cfg.QueryRate
	if stationaryQueries {
		queryRate = 0 // Q-index cannot move queries; keep the comparison fair
	}
	inc.Step(world.Now())
	snap.Step(world.Now())
	if qi != nil {
		qi.Step(world.Now())
		vc.Step(world.Now())
	}

	var res StrategyResult
	for i := 0; i < cfg.Ticks; i++ {
		wl.Tick(fan, cfg.DT, cfg.Rate, queryRate)
		now := world.Now()

		start := time.Now()
		inc.Step(now)
		res.IncrementalMillis += msSince(start)

		start = time.Now()
		snap.Step(now)
		res.SnapshotMillis += msSince(start)

		if qi != nil {
			start = time.Now()
			qi.Step(now)
			res.QIndexMillis += msSince(start)

			start = time.Now()
			vc.Step(now)
			res.VCIMillis += msSince(start)
		}
	}
	n := float64(cfg.Ticks)
	res.IncrementalMillis /= n
	res.SnapshotMillis /= n
	res.QIndexMillis /= n
	res.VCIMillis /= n
	return res
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

// fanout duplicates reports to several engines.
type fanout struct {
	sinks []gen.Sink
}

func (f fanout) ReportObject(u core.ObjectUpdate) {
	for _, s := range f.sinks {
		s.ReportObject(u)
	}
}

func (f fanout) ReportQuery(u core.QueryUpdate) {
	for _, s := range f.sinks {
		s.ReportQuery(u)
	}
}

// --- Ablation 3: grid granularity -----------------------------------------

// RunGridSweep returns the average Step time for each grid size.
func RunGridSweep(cfg Fig5Config, gridSizes []int) []float64 {
	cfg = cfg.WithDefaults()
	out := make([]float64, len(gridSizes))
	for i, n := range gridSizes {
		c := cfg
		c.GridN = n
		out[i] = RunFig5Point(c).StepMillis
	}
	return out
}

// --- Ablation 5: recovery traffic ----------------------------------------

// RecoveryResult compares the bytes needed to resynchronize an
// out-of-sync client by incremental diff versus complete-answer resend.
type RecoveryResult struct {
	MissedTicks int
	DiffKB      float64
	FullKB      float64
	DiffTuples  int
	AnswerSize  int
}

// RunRecovery simulates one query subscribed over a Figure-5 workload,
// disconnects it for missedTicks evaluations, and measures both recovery
// payloads.
func RunRecovery(cfg Fig5Config, missedTicksList []int) []RecoveryResult {
	cfg = cfg.WithDefaults()
	out := make([]RecoveryResult, 0, len(missedTicksList))
	for _, missed := range missedTicksList {
		net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
		world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
		wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
		scatter(wl)
		engine := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN})
		wl.Bootstrap(engine)
		engine.Step(world.Now())

		const q = core.QueryID(1)
		engine.Commit(q)
		for i := 0; i < missed; i++ {
			wl.Tick(engine, cfg.DT, cfg.Rate, cfg.QueryRate)
			engine.Step(world.Now())
		}
		diff, _ := engine.Recover(q)
		ans, _ := engine.Answer(q)
		out = append(out, RecoveryResult{
			MissedTicks: missed,
			DiffKB:      float64(wire.EncodedSize(wire.RecoveryDiff{Updates: diff})) / 1024,
			FullKB:      float64(wire.EncodedSize(wire.FullAnswer{Query: q, Objects: ans})) / 1024,
			DiffTuples:  len(diff),
			AnswerSize:  len(ans),
		})
	}
	return out
}

// --- Ablation 6: bulk vs per-report processing -----------------------------

// BulkResult compares processing an identical report stream in one bulk
// Step against one Step per report.
type BulkResult struct {
	BatchSize  int
	BulkMillis float64 // one Step for the whole batch
	OneByOneMS float64 // one Step per report
}

// RunBulk measures the bulk-processing advantage for several batch sizes.
func RunBulk(cfg Fig5Config, batchSizes []int) []BulkResult {
	cfg = cfg.WithDefaults()
	out := make([]BulkResult, 0, len(batchSizes))
	for _, bs := range batchSizes {
		out = append(out, runBulkPoint(cfg, bs))
	}
	return out
}

func runBulkPoint(cfg Fig5Config, batchSize int) BulkResult {
	build := func() (*core.Engine, *gen.Workload, *gen.World) {
		net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
		world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
		wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
		scatter(wl)
		e := core.MustNewEngine(core.Options{Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN})
		wl.Bootstrap(e)
		e.Step(world.Now())
		return e, wl, world
	}

	// Collect an identical stream of reports.
	e1, wl, world := build()
	var reports []core.ObjectUpdate
	rec := &recorder{}
	wl.Tick(rec, cfg.DT, cfg.Rate, 0)
	reports = rec.objs
	if len(reports) > batchSize {
		reports = reports[:batchSize]
	}

	// Bulk: one Step.
	start := time.Now()
	for _, u := range reports {
		e1.ReportObject(u)
	}
	e1.Step(world.Now())
	bulk := msSince(start)

	// One by one: a Step per report.
	e2, _, world2 := build()
	start = time.Now()
	for _, u := range reports {
		e2.ReportObject(u)
		e2.Step(world2.Now())
	}
	single := msSince(start)

	return BulkResult{BatchSize: len(reports), BulkMillis: bulk, OneByOneMS: single}
}

type recorder struct {
	objs []core.ObjectUpdate
	qrys []core.QueryUpdate
}

func (r *recorder) ReportObject(u core.ObjectUpdate) { r.objs = append(r.objs, u) }
func (r *recorder) ReportQuery(u core.QueryUpdate)   { r.qrys = append(r.qrys, u) }

// --- Ablation 8: parallel gather ------------------------------------------

// RunParallelSweep measures the average Step time of the incremental
// engine across gather-parallelism levels on an identical workload.
func RunParallelSweep(cfg Fig5Config, workers []int) []float64 {
	cfg = cfg.WithDefaults()
	out := make([]float64, len(workers))
	for i, w := range workers {
		net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
		world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
		wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
		scatter(wl)
		engine := core.MustNewEngine(core.Options{
			Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN, Parallelism: w,
		})
		wl.Bootstrap(engine)
		engine.Step(world.Now())
		total := 0.0
		for tick := 0; tick < cfg.Ticks; tick++ {
			wl.Tick(engine, cfg.DT, cfg.Rate, cfg.QueryRate)
			start := time.Now()
			engine.Step(world.Now())
			total += msSince(start)
		}
		out[i] = total / float64(cfg.Ticks)
	}
	return out
}
