package bench

import "testing"

// tiny returns a configuration small enough for unit tests while still
// exercising the full harness path.
func tiny() Fig5Config {
	return Fig5Config{
		Objects: 400, Queries: 400, GridN: 16,
		QuerySide: 0.02, Rate: 0.3, QueryRate: 0.3,
		Ticks: 2, Warmup: 1, DT: 5, Seed: 1,
	}
}

func TestWithDefaults(t *testing.T) {
	c := Fig5Config{}.WithDefaults()
	if c.Objects != 20000 || c.Queries != 20000 || c.GridN != 64 ||
		c.QuerySide != 0.01 || c.Rate != 0.3 || c.QueryRate != 0.3 ||
		c.Ticks != 10 || c.Warmup != 3 || c.DT != 5 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	// Explicit values survive.
	c = Fig5Config{Objects: 7, Rate: 0.9}.WithDefaults()
	if c.Objects != 7 || c.Rate != 0.9 {
		t.Fatalf("overrides lost: %+v", c)
	}
}

func TestRunFig5PointShape(t *testing.T) {
	r := RunFig5Point(tiny())
	if r.IncrementalKB <= 0 || r.CompleteKB <= 0 {
		t.Fatalf("zero traffic: %+v", r)
	}
	if r.IncrementalKB >= r.CompleteKB {
		t.Fatalf("incremental (%v KB) should be below complete (%v KB)",
			r.IncrementalKB, r.CompleteKB)
	}
	if r.Updates <= 0 || r.AnswerTuples <= 0 {
		t.Fatalf("no activity: %+v", r)
	}

	// Determinism: same config, same numbers (wall time excluded).
	r2 := RunFig5Point(tiny())
	r.StepMillis, r2.StepMillis = 0, 0
	if r != r2 {
		t.Fatalf("non-deterministic: %+v vs %+v", r, r2)
	}

	// Higher update rate ⇒ more incremental traffic (Figure 5a's slope).
	hi := tiny()
	hi.Rate = 1.0
	rHi := RunFig5Point(hi)
	if rHi.IncrementalKB <= r.IncrementalKB {
		t.Fatalf("rate 100%% traffic %v ≤ rate 30%% traffic %v",
			rHi.IncrementalKB, r.IncrementalKB)
	}

	// Larger queries ⇒ larger complete answers (Figure 5b's slope).
	wide := tiny()
	wide.QuerySide = 0.06
	rWide := RunFig5Point(wide)
	if rWide.CompleteKB <= r.CompleteKB {
		t.Fatalf("side 0.06 complete %v ≤ side 0.02 complete %v",
			rWide.CompleteKB, r.CompleteKB)
	}
}

func TestRunStrategyComparison(t *testing.T) {
	r := RunStrategyComparison(tiny(), false)
	if r.IncrementalMillis <= 0 || r.SnapshotMillis <= 0 {
		t.Fatalf("missing timings: %+v", r)
	}
	if r.QIndexMillis != 0 {
		t.Fatalf("q-index should be skipped for moving queries: %+v", r)
	}
	r = RunStrategyComparison(tiny(), true)
	if r.QIndexMillis <= 0 || r.VCIMillis <= 0 {
		t.Fatalf("baseline timings missing: %+v", r)
	}
}

func TestRunGridSweep(t *testing.T) {
	times := RunGridSweep(tiny(), []int{8, 32})
	if len(times) != 2 || times[0] <= 0 || times[1] <= 0 {
		t.Fatalf("sweep: %v", times)
	}
}

func TestRunRecovery(t *testing.T) {
	rs := RunRecovery(tiny(), []int{1, 5})
	if len(rs) != 2 {
		t.Fatalf("results: %+v", rs)
	}
	for _, r := range rs {
		if r.DiffKB <= 0 || r.FullKB <= 0 {
			t.Fatalf("zero traffic: %+v", r)
		}
		// The diff can never contain more information than twice the
		// answer (everything left + everything entered).
		if r.DiffTuples > 2*r.AnswerSize+2 {
			t.Fatalf("implausible diff: %+v", r)
		}
	}
	// A short outage needs (weakly) less recovery traffic than a long one.
	if rs[0].DiffTuples > rs[1].DiffTuples {
		t.Fatalf("short outage diff %d > long outage diff %d",
			rs[0].DiffTuples, rs[1].DiffTuples)
	}
}

func TestRunBulk(t *testing.T) {
	rs := RunBulk(tiny(), []int{50})
	if len(rs) != 1 || rs[0].BatchSize == 0 {
		t.Fatalf("bulk: %+v", rs)
	}
	if rs[0].BulkMillis <= 0 || rs[0].OneByOneMS <= 0 {
		t.Fatalf("timings: %+v", rs)
	}
}

func TestRunPredictiveComparison(t *testing.T) {
	cfg := tiny()
	r := RunPredictiveComparison(cfg)
	if r.IncrementalMillis <= 0 || r.TPRMillis <= 0 {
		t.Fatalf("timings: %+v", r)
	}
	if r.AnswerTuples <= 0 {
		t.Fatalf("no predictive answers: %+v", r)
	}
}

func TestRunParallelSweep(t *testing.T) {
	times := RunParallelSweep(tiny(), []int{1, 4})
	if len(times) != 2 || times[0] <= 0 || times[1] <= 0 {
		t.Fatalf("sweep: %v", times)
	}
}
