package bench

import (
	"time"

	"cqp/internal/baseline/tprq"
	"cqp/internal/core"
	"cqp/internal/gen"
	"cqp/internal/geo"
	"cqp/internal/roadnet"
)

// PredictiveResult compares predictive-query evaluation strategies: the
// paper's shared grid with incremental updates against TPR-tree
// re-evaluation (Ablation 7).
type PredictiveResult struct {
	IncrementalMillis float64 // shared grid, incremental, avg Step ms
	TPRMillis         float64 // TPR-tree re-evaluation, avg Step ms
	Updates           float64 // avg incremental updates per evaluation
	AnswerTuples      float64 // avg total complete-answer cardinality
}

// RunPredictiveComparison drives both engines with an identical stream of
// predictive object reports (location + velocity, from the road-network
// world) and moving predictive range queries whose windows look
// WindowAhead..WindowAhead+WindowLen into the future.
func RunPredictiveComparison(cfg Fig5Config) PredictiveResult {
	cfg = cfg.WithDefaults()
	const (
		horizon     = 200.0
		windowAhead = 10.0
		windowLen   = 50.0
	)
	net := roadnet.Generate(roadnet.Config{Seed: cfg.Seed})
	world := gen.MustNewWorld(gen.Config{Net: net, NumObjects: cfg.Objects, Seed: cfg.Seed})
	wl := gen.NewWorkload(world, cfg.Queries, cfg.QuerySide, cfg.Seed)
	scatter(wl)

	inc := core.MustNewEngine(core.Options{
		Bounds: geo.R(0, 0, 1, 1), GridN: cfg.GridN, PredictiveHorizon: horizon,
	})
	bl := tprq.New(world.Now(), horizon)

	reportObject := func(i int, now float64) {
		loc, vel := world.Object(i)
		u := core.ObjectUpdate{
			ID: core.ObjectID(i + 1), Kind: core.Predictive, Loc: loc, Vel: vel, T: now,
		}
		inc.ReportObject(u)
		bl.ReportObject(u)
	}
	reportQuery := func(j int, now float64) {
		u := core.QueryUpdate{
			ID: core.QueryID(j + 1), Kind: core.PredictiveRange,
			Region: wl.QueryRegion(j),
			T1:     now + windowAhead, T2: now + windowAhead + windowLen,
			T: now,
		}
		inc.ReportQuery(u)
		bl.ReportQuery(u)
	}

	// Bootstrap the full population.
	now := world.Now()
	for i := 0; i < cfg.Objects; i++ {
		reportObject(i, now)
	}
	for j := 0; j < cfg.Queries; j++ {
		reportQuery(j, now)
	}
	inc.Step(now)
	bl.Step(now)

	var res PredictiveResult
	for tick := 0; tick < cfg.Ticks; tick++ {
		world.AdvanceClock(cfg.DT)
		wl.Queries.AdvanceClock(cfg.DT)
		now = world.Now()
		// cfg.Rate of objects change course (move + new velocity);
		// cfg.QueryRate of queries move and slide their windows.
		for i := 0; i < cfg.Objects; i++ {
			if float64(i%100)/100 < cfg.Rate {
				world.AdvanceObject(i, cfg.DT)
				reportObject(i, now)
			}
		}
		for j := 0; j < cfg.Queries; j++ {
			if float64(j%100)/100 < cfg.QueryRate {
				wl.Queries.AdvanceObject(j, cfg.DT)
				reportQuery(j, now)
			}
		}

		start := time.Now()
		updates := inc.Step(now)
		res.IncrementalMillis += msSince(start)
		res.Updates += float64(len(updates))

		start = time.Now()
		snaps := bl.Step(now)
		res.TPRMillis += msSince(start)
		for _, s := range snaps {
			res.AnswerTuples += float64(len(s.Objects))
		}
	}
	n := float64(cfg.Ticks)
	res.IncrementalMillis /= n
	res.TPRMillis /= n
	res.Updates /= n
	res.AnswerTuples /= n
	return res
}
