package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/geo"
)

func TestNewWithFanoutPanics(t *testing.T) {
	for _, tc := range []struct{ max, min int }{
		{16, 1},
		{16, 9},
		{4, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithFanout(%d,%d) should panic", tc.max, tc.min)
				}
			}()
			NewWithFanout(tc.max, tc.min)
		}()
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New()
	tr.Insert(1, geo.R(0, 0, 1, 1))
	tr.Insert(2, geo.R(2, 2, 3, 3))
	tr.Insert(3, geo.R(0.5, 0.5, 2.5, 2.5))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}

	var got []uint64
	tr.Search(geo.R(0.9, 0.9, 1.1, 1.1), func(id uint64, _ geo.Rect) bool {
		got = append(got, id)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Search = %v, want [1 3]", got)
	}

	var hits []uint64
	tr.SearchPoint(geo.Pt(2.6, 2.6), func(id uint64, _ geo.Rect) bool {
		hits = append(hits, id)
		return true
	})
	if len(hits) != 1 || hits[0] != 2 {
		t.Errorf("SearchPoint = %v, want [2]", hits)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, geo.R(0, 0, 1, 1))
	}
	n := 0
	tr.Search(geo.R(0, 0, 1, 1), func(uint64, geo.Rect) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestInvariantsUnderInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewWithFanout(8, 4)
	for i := uint64(0); i < 2000; i++ {
		c := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		tr.Insert(i, geo.RectAt(c, rng.Float64()*5))
		if i%211 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	type rec struct {
		id uint64
		r  geo.Rect
	}
	var all []rec
	for i := uint64(0); i < 1000; i++ {
		r := geo.RectAt(geo.Pt(rng.Float64()*50, rng.Float64()*50), rng.Float64()*3)
		all = append(all, rec{i, r})
		tr.Insert(i, r)
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.RectAt(geo.Pt(rng.Float64()*50, rng.Float64()*50), rng.Float64()*10)
		want := map[uint64]bool{}
		for _, rc := range all {
			if rc.r.Intersects(q) {
				want[rc.id] = true
			}
		}
		got := map[uint64]bool{}
		tr.Search(q, func(id uint64, _ geo.Rect) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	tr := NewWithFanout(8, 4)
	rects := map[uint64]geo.Rect{}
	rng := rand.New(rand.NewSource(3))
	for i := uint64(0); i < 500; i++ {
		r := geo.RectAt(geo.Pt(rng.Float64()*50, rng.Float64()*50), rng.Float64()*2)
		rects[i] = r
		tr.Insert(i, r)
	}

	// Delete half, verifying invariants as we go.
	for i := uint64(0); i < 250; i++ {
		if !tr.Delete(i, rects[i]) {
			t.Fatalf("Delete(%d) = false", i)
		}
		if i%37 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after deleting %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Deleted entries are gone; survivors remain findable.
	for i := uint64(0); i < 500; i++ {
		found := false
		tr.Search(rects[i], func(id uint64, r geo.Rect) bool {
			if id == i && r == rects[i] {
				found = true
				return false
			}
			return true
		})
		if want := i >= 250; found != want {
			t.Fatalf("id %d: found=%v want=%v", i, found, want)
		}
	}
	// Deleting a missing entry fails cleanly.
	if tr.Delete(0, rects[0]) {
		t.Error("double delete succeeded")
	}
	if tr.Delete(999, geo.R(0, 0, 1, 1)) {
		t.Error("deleting unknown id succeeded")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := NewWithFanout(4, 2)
	r := geo.R(0, 0, 1, 1)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, r)
	}
	for i := uint64(0); i < 100; i++ {
		if !tr.Delete(i, r) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The emptied tree must accept new entries.
	tr.Insert(7, r)
	n := 0
	tr.Search(r, func(uint64, geo.Rect) bool { n++; return true })
	if n != 1 {
		t.Fatalf("reused tree search hits = %d", n)
	}
}

func TestMixedInsertDeleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewWithFanout(8, 4)
	live := map[uint64]geo.Rect{}
	next := uint64(0)
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			r := geo.RectAt(geo.Pt(rng.Float64()*20, rng.Float64()*20), rng.Float64())
			tr.Insert(next, r)
			live[next] = r
			next++
		} else {
			// Delete a random live id.
			var id uint64
			for id = range live {
				break
			}
			if !tr.Delete(id, live[id]) {
				t.Fatalf("op %d: delete %d failed", op, id)
			}
			delete(live, id)
		}
		if op%503 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("op %d: Len=%d live=%d", op, tr.Len(), len(live))
			}
		}
	}
	// Final full cross-check.
	got := map[uint64]bool{}
	tr.Search(geo.R(-100, -100, 100, 100), func(id uint64, _ geo.Rect) bool {
		got[id] = true
		return true
	})
	if len(got) != len(live) {
		t.Fatalf("final: got %d, want %d", len(got), len(live))
	}
	for id := range live {
		if !got[id] {
			t.Fatalf("final: missing %d", id)
		}
	}
}

func TestNearest(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(5))
	type rec struct {
		id uint64
		r  geo.Rect
	}
	var all []rec
	for i := uint64(0); i < 300; i++ {
		r := geo.RectAt(geo.Pt(rng.Float64()*50, rng.Float64()*50), rng.Float64()*2)
		all = append(all, rec{i, r})
		tr.Insert(i, r)
	}
	for trial := 0; trial < 50; trial++ {
		p := geo.Pt(rng.Float64()*50, rng.Float64()*50)
		k := 1 + rng.Intn(10)
		got := tr.Nearest(p, k)
		if len(got) != k {
			t.Fatalf("Nearest len = %d, want %d", len(got), k)
		}
		dists := make([]float64, len(all))
		for i, rc := range all {
			dists[i] = rc.r.MinDist(p)
		}
		sort.Float64s(dists)
		for i := range got {
			if d := got[i].Dist - dists[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d: dist[%d]=%v want %v", trial, i, got[i].Dist, dists[i])
			}
		}
	}
	if got := tr.Nearest(geo.Pt(0, 0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	empty := New()
	if got := empty.Nearest(geo.Pt(0, 0), 5); got != nil {
		t.Error("empty tree should return nil")
	}
}
