package rtree

import (
	"math/rand"
	"testing"

	"cqp/internal/geo"
)

func BenchmarkRTreeInsert(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		tr.Insert(uint64(i), geo.RectAt(c, rng.Float64()))
	}
}

func BenchmarkRTreeSearch(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i), geo.RectAt(geo.Pt(rng.Float64()*100, rng.Float64()*100), 0.5))
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		q := geo.RectAt(geo.Pt(rng.Float64()*100, rng.Float64()*100), 2)
		tr.Search(q, func(uint64, geo.Rect) bool { count++; return true })
	}
	_ = count
}

func BenchmarkRTreeNearest(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i), geo.RectAt(geo.Pt(rng.Float64()*100, rng.Float64()*100), 0.1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(geo.Pt(rng.Float64()*100, rng.Float64()*100), 10)
	}
}
