// Package rtree implements a Guttman R-tree with quadratic split. It is
// the substrate for the Q-index baseline (an R-tree built over query
// regions that moving objects probe) and for indexing stationary object
// populations, mirroring the access methods the paper compares against.
//
// The tree maps uint64 identifiers to rectangles. It supports insertion,
// deletion (with the standard condense-tree reinsertion), rectangle
// search, and best-first nearest-neighbor search.
package rtree

import (
	"container/heap"
	"fmt"
	"math"

	"cqp/internal/geo"
)

// Default fanout bounds. Guttman's m ≤ M/2 requirement holds.
const (
	defaultMax = 16
	defaultMin = 6
)

// Tree is an R-tree. The zero value is not usable; call New.
type Tree struct {
	root    *node
	size    int
	maxFill int
	minFill int
}

type entry struct {
	bbox  geo.Rect
	child *node  // non-nil for internal entries
	id    uint64 // leaf payload
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty R-tree with the default fanout (M=16, m=6).
func New() *Tree { return NewWithFanout(defaultMax, defaultMin) }

// NewWithFanout returns an empty R-tree with maximum node fanout max and
// minimum fill min. It panics unless 2 ≤ min ≤ max/2.
func NewWithFanout(max, min int) *Tree {
	if min < 2 || min > max/2 {
		panic(fmt.Sprintf("rtree: invalid fanout max=%d min=%d", max, min))
	}
	return &Tree{
		root:    &node{leaf: true},
		maxFill: max,
		minFill: min,
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds id with bounding box r. Duplicate ids are allowed (the tree
// is a multimap); Delete removes one matching (id, r) pair.
func (t *Tree) Insert(id uint64, r geo.Rect) {
	t.insertEntry(entry{bbox: r, id: id})
	t.size++
}

// insertEntry places a leaf entry, adjusting bounding boxes and splitting
// overflowing nodes along the descent path (Guttman's ChooseLeaf +
// AdjustTree).
func (t *Tree) insertEntry(e entry) {
	var (
		path []*node
		idxs []int
	)
	n := t.root
	for !n.leaf {
		best := chooseSubtree(n, e.bbox)
		path = append(path, n)
		idxs = append(idxs, best)
		n = n.entries[best].child
	}
	n.entries = append(n.entries, e)

	var splitOff *entry
	if len(n.entries) > t.maxFill {
		se := t.splitNode(n)
		splitOff = &se
	}
	for i := len(path) - 1; i >= 0; i-- {
		parent, idx := path[i], idxs[i]
		parent.entries[idx].bbox = nodeBBox(parent.entries[idx].child)
		if splitOff != nil {
			parent.entries = append(parent.entries, *splitOff)
			splitOff = nil
			if len(parent.entries) > t.maxFill {
				se := t.splitNode(parent)
				splitOff = &se
			}
		}
	}
	if splitOff != nil {
		// Root split: grow the tree.
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{bbox: nodeBBox(old), child: old},
				*splitOff,
			},
		}
	}
}

// chooseSubtree picks the child of n needing the least enlargement to
// include r (ties by smallest area), per Guttman.
func chooseSubtree(n *node, r geo.Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range n.entries {
		enl := n.entries[i].bbox.Enlargement(r)
		area := n.entries[i].bbox.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split in place: n keeps one
// group, and the returned entry points to a new node holding the other.
func (t *Tree) splitNode(n *node) entry {
	ents := n.entries

	// Quadratic pick-seeds: the pair wasting the most area together.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			waste := ents[i].bbox.Union(ents[j].bbox).Area() - ents[i].bbox.Area() - ents[j].bbox.Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}

	groupA := []entry{ents[seedA]}
	groupB := []entry{ents[seedB]}
	bboxA, bboxB := ents[seedA].bbox, ents[seedB].bbox

	rest := make([]entry, 0, len(ents)-2)
	for i := range ents {
		if i != seedA && i != seedB {
			rest = append(rest, ents[i])
		}
	}

	for len(rest) > 0 {
		// If one group must take all remaining entries to reach minFill, do so.
		if len(groupA)+len(rest) == t.minFill {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				bboxA = bboxA.Union(e.bbox)
			}
			break
		}
		if len(groupB)+len(rest) == t.minFill {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				bboxB = bboxB.Union(e.bbox)
			}
			break
		}

		// Pick-next: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := bboxA.Enlargement(e.bbox)
			dB := bboxB.Enlargement(e.bbox)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]

		dA := bboxA.Enlargement(e.bbox)
		dB := bboxB.Enlargement(e.bbox)
		toA := dA < dB
		if dA == dB {
			// Resolve ties by smaller area, then fewer entries.
			switch {
			case bboxA.Area() != bboxB.Area():
				toA = bboxA.Area() < bboxB.Area()
			default:
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, e)
			bboxA = bboxA.Union(e.bbox)
		} else {
			groupB = append(groupB, e)
			bboxB = bboxB.Union(e.bbox)
		}
	}

	n.entries = groupA
	sibling := &node{leaf: n.leaf, entries: groupB}
	return entry{bbox: bboxB, child: sibling}
}

func nodeBBox(n *node) geo.Rect {
	b := n.entries[0].bbox
	for _, e := range n.entries[1:] {
		b = b.Union(e.bbox)
	}
	return b
}

// Search calls fn for every stored (id, rect) whose rectangle intersects
// q, stopping early if fn returns false.
func (t *Tree) Search(q geo.Rect, fn func(id uint64, r geo.Rect) bool) {
	t.search(t.root, q, fn)
}

func (t *Tree) search(n *node, q geo.Rect, fn func(uint64, geo.Rect) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.bbox.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(e.id, e.bbox) {
				return false
			}
		} else if !t.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// SearchPoint calls fn for every stored entry whose rectangle contains p.
func (t *Tree) SearchPoint(p geo.Point, fn func(id uint64, r geo.Rect) bool) {
	t.Search(geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, fn)
}

// Delete removes one entry matching id whose stored rectangle equals r.
// It reports whether an entry was removed. Underfull nodes are condensed:
// their remaining entries are reinserted, per Guttman.
func (t *Tree) Delete(id uint64, r geo.Rect) bool {
	var orphans []entry
	removed := t.condense(t.root, id, r, &orphans)
	if !removed {
		return false
	}
	t.size--

	// Shrink the root if it lost all but one child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}

	// Reinsert orphaned entries. Leaf orphans reinsert normally; orphaned
	// subtrees reinsert their leaves.
	for _, e := range orphans {
		if e.child == nil {
			t.insertEntry(e)
		} else {
			t.reinsertSubtree(e.child)
		}
	}
	return true
}

func (t *Tree) reinsertSubtree(n *node) {
	if n.leaf {
		for _, e := range n.entries {
			t.insertEntry(e)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtree(e.child)
	}
}

// condense removes (id, r) from the subtree rooted at n, collecting
// entries of underfull nodes into orphans.
func (t *Tree) condense(n *node, id uint64, r geo.Rect, orphans *[]entry) bool {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].id == id && n.entries[i].bbox == r {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.bbox.Intersects(r) {
			continue
		}
		if !t.condense(e.child, id, r, orphans) {
			continue
		}
		if len(e.child.entries) < t.minFill {
			// Orphan the underfull child's entries for reinsertion.
			for _, ce := range e.child.entries {
				*orphans = append(*orphans, ce)
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.bbox = nodeBBox(e.child)
		}
		return true
	}
	return false
}

// Nearest returns up to k entries whose rectangles are nearest to p
// (MinDist order), using best-first search over a priority queue.
func (t *Tree) Nearest(p geo.Point, k int) []NearestResult {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &distQueue{}
	heap.Init(pq)
	heap.Push(pq, distItem{node: t.root, dist: 0})

	var out []NearestResult
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(distItem)
		if it.node != nil {
			for i := range it.node.entries {
				e := &it.node.entries[i]
				d := e.bbox.MinDist(p)
				if e.child != nil {
					heap.Push(pq, distItem{node: e.child, dist: d})
				} else {
					heap.Push(pq, distItem{leafEntry: e, dist: d})
				}
			}
			continue
		}
		out = append(out, NearestResult{ID: it.leafEntry.id, Rect: it.leafEntry.bbox, Dist: it.dist})
	}
	return out
}

// NearestResult is one hit of a nearest-neighbor search.
type NearestResult struct {
	ID   uint64
	Rect geo.Rect
	Dist float64
}

type distItem struct {
	node      *node
	leafEntry *entry
	dist      float64
}

type distQueue []distItem

func (q distQueue) Len() int            { return len(q) }
func (q distQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q distQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x interface{}) { *q = append(*q, x.(distItem)) }
func (q *distQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// CheckInvariants validates structural invariants (for tests): bounding
// boxes tight, fill bounds respected (root exempt), uniform leaf depth.
// It returns an error describing the first violation found.
func (t *Tree) CheckInvariants() error {
	depth := -1
	var walk func(n *node, level int, isRoot bool) error
	walk = func(n *node, level int, isRoot bool) error {
		if !isRoot && len(n.entries) < t.minFill {
			return fmt.Errorf("node at level %d underfull: %d < %d", level, len(n.entries), t.minFill)
		}
		if len(n.entries) > t.maxFill {
			return fmt.Errorf("node at level %d overfull: %d > %d", level, len(n.entries), t.maxFill)
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("leaf at level %d, expected %d", level, depth)
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("internal entry without child at level %d", level)
			}
			if got := nodeBBox(e.child); got != e.bbox {
				return fmt.Errorf("stale bbox at level %d: have %v want %v", level, e.bbox, got)
			}
			if err := walk(e.child, level+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
