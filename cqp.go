// Package cqp is a continuous query processor for spatio-temporal
// databases: a from-scratch implementation of the scalable, incremental
// framework of Mokbel, "Continuous Query Processing in Spatio-temporal
// Databases" (EDBT 2004 Ph.D. workshop; the design later realized as
// SINA).
//
// The processor stores moving objects and continuous queries together in
// one shared grid and evaluates all outstanding queries as a periodic
// bulk spatial join. Its output is incremental: positive updates (Q, +A)
// and negative updates (Q, −A) that transform each query's previously
// reported answer into the current one, rather than complete answers.
//
// # Quick start
//
//	e := cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 100, 100)})
//	e.ReportObject(cqp.ObjectUpdate{ID: 1, Kind: cqp.Moving, Loc: cqp.Pt(10, 10)})
//	e.ReportQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.Range, Region: cqp.R(5, 5, 15, 15)})
//	for _, u := range e.Step(0) {
//		fmt.Println(u) // (Q1, +O1)
//	}
//
// # Sharding
//
// Both the single Engine and the spatially sharded engine satisfy the
// Processor interface. NewShardedEngine partitions the space into an
// R×C tile grid with one engine per tile evaluating in parallel and a
// router merging the per-tile streams into the same exact global answer
// stream — a drop-in replacement when one core saturates:
//
//	p, err := cqp.NewShardedEngine(cqp.Options{Bounds: cqp.R(0, 0, 100, 100)}, 4)
//	defer p.Close()
//
// The network server selects the implementation with its Shards config
// knob (cmd/cqp-server -shards).
//
// The root package re-exports the engine (internal/core), the geometry
// kernel (internal/geo), the network layer (internal/server,
// internal/client), and the road-network workload generator
// (internal/roadnet, internal/gen). Examples under examples/ and the
// experiment harness under cmd/cqp-bench exercise the full surface.
package cqp

import (
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/shard"
)

// Geometry kernel.
type (
	// Point is a location in the plane.
	Point = geo.Point
	// Vector is a displacement or velocity.
	Vector = geo.Vector
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Circle is a disk.
	Circle = geo.Circle
	// Segment is a line segment.
	Segment = geo.Segment
	// Motion is a time-parameterized linear movement.
	Motion = geo.Motion
)

// Geometry constructors, re-exported for convenience.
var (
	// Pt constructs a Point.
	Pt = geo.Pt
	// Vec constructs a Vector.
	Vec = geo.Vec
	// R constructs a normalized Rect from two corners.
	R = geo.R
	// RectAt constructs the square of a given side centered at a point.
	RectAt = geo.RectAt
	// RectAround constructs the bounding square of a circle.
	RectAround = geo.RectAround
)

// Engine types.
type (
	// Engine is the shared incremental continuous query processor.
	Engine = core.Engine
	// Processor is the evaluation contract satisfied by both the single
	// Engine and the sharded engine.
	Processor = core.Processor
	// ShardedEngine partitions the space into parallel per-tile engines
	// behind the Processor interface.
	ShardedEngine = shard.Engine
	// ShardOptions configures a ShardedEngine (tile grid shape, kNN
	// replication padding, halo margin, repartition policy).
	ShardOptions = shard.Options
	// ShardRepartitionOptions tunes the sharded engine's load-aware
	// tile split/merge policy.
	ShardRepartitionOptions = shard.RepartitionOptions
	// Options configures an Engine.
	Options = core.Options
	// Stats aggregates engine activity counters.
	Stats = core.Stats
	// ObjectID identifies an object.
	ObjectID = core.ObjectID
	// QueryID identifies a continuous query.
	QueryID = core.QueryID
	// ObjectKind classifies objects (Stationary, Moving, Predictive).
	ObjectKind = core.ObjectKind
	// QueryKind classifies queries (Range, KNN, PredictiveRange).
	QueryKind = core.QueryKind
	// Update is one incremental answer update (Q, ±A).
	Update = core.Update
	// ObjectUpdate is a buffered object report.
	ObjectUpdate = core.ObjectUpdate
	// QueryUpdate is a buffered query report.
	QueryUpdate = core.QueryUpdate
	// Snapshot is a complete answer of one query.
	Snapshot = core.Snapshot
)

// Object kinds.
const (
	// Stationary objects never move.
	Stationary = core.Stationary
	// Moving objects report sampled locations.
	Moving = core.Moving
	// Predictive objects report location plus velocity.
	Predictive = core.Predictive
)

// Query kinds.
const (
	// Range is a continuous rectangular range query.
	Range = core.Range
	// KNN is a continuous k-nearest-neighbor query.
	KNN = core.KNN
	// PredictiveRange is a range query over a future time window.
	PredictiveRange = core.PredictiveRange
)

// NewEngine constructs an engine over the given space.
func NewEngine(opt Options) (*Engine, error) { return core.NewEngine(opt) }

// MustNewEngine is NewEngine that panics on configuration errors.
func MustNewEngine(opt Options) *Engine { return core.MustNewEngine(opt) }

// NewShardedEngine constructs a spatially sharded processor over the
// given space with n tile shards (arranged into the most square R×C
// grid whose product is n), each evaluated by its own goroutine. Close
// it when done to stop the workers.
func NewShardedEngine(opt Options, n int) (*ShardedEngine, error) {
	return shard.NewN(opt, n)
}

// ApplyUpdates replays an update stream onto a client-side answer set.
func ApplyUpdates(answer map[ObjectID]struct{}, updates []Update, q QueryID) {
	core.ApplyUpdates(answer, updates, q)
}

// ChecksumIDs returns the order-independent answer checksum used by the
// recovery handshake.
func ChecksumIDs(ids []ObjectID) uint64 { return core.ChecksumIDs(ids) }
