package cqp

import (
	"cqp/internal/gen"
	"cqp/internal/roadnet"
)

// Workload generation: the Brinkhoff-style network-based generator the
// benchmarks (and the paper's evaluation) run on.
type (
	// RoadNetwork is a synthetic city road network.
	RoadNetwork = roadnet.Network
	// RoadNetworkConfig parameterizes GenerateRoadNetwork.
	RoadNetworkConfig = roadnet.Config
	// RoadClass is a road class (Side, Main, Highway).
	RoadClass = roadnet.Class
	// World is a population of network-constrained moving objects.
	World = gen.World
	// WorldConfig parameterizes NewWorld.
	WorldConfig = gen.Config
	// Workload drives an engine with the paper's evaluation setup.
	Workload = gen.Workload
)

// Road classes.
const (
	// SideRoad is a dense, slow side street.
	SideRoad = roadnet.Side
	// MainRoad is a faster arterial.
	MainRoad = roadnet.Main
	// HighwayRoad is the fastest class.
	HighwayRoad = roadnet.Highway
)

// GenerateRoadNetwork builds a deterministic synthetic city network.
func GenerateRoadNetwork(cfg RoadNetworkConfig) *RoadNetwork { return roadnet.Generate(cfg) }

// NewWorld creates a moving-object population on a road network.
func NewWorld(cfg WorldConfig) (*World, error) { return gen.NewWorld(cfg) }

// MustNewWorld is NewWorld that panics on configuration errors.
func MustNewWorld(cfg WorldConfig) *World { return gen.MustNewWorld(cfg) }

// NewWorkload builds the paper's evaluation workload over a world.
func NewWorkload(w *World, numQueries int, querySide float64, seed int64) *Workload {
	return gen.NewWorkload(w, numQueries, querySide, seed)
}
