package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example in-process with a small population:
// it must print the per-tick table and the closing totals line.
func TestRun(t *testing.T) {
	var out strings.Builder
	run(&out, 300, 60, 3, 0.3, 0.01, 1)
	s := out.String()
	for _, want := range []string{"complete KB", "totals:", "Figure 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Three evaluation rows follow the header.
	if got := strings.Count(s, "%"); got == 0 {
		t.Error("no ratio column rendered")
	}
}
