// Command trafficmonitor runs the paper's evaluation scenario end to end:
// a synthetic city road network, a population of network-constrained
// moving vehicles, and a population of moving range queries ("alert me
// about vehicles near me"), evaluated in bulk every period. It prints,
// per evaluation, the size of the incremental answer against the size of
// the complete answer the naive snapshot approach would transmit — the
// paper's Figure 5 measurement, live.
//
// Run with:
//
//	go run ./examples/trafficmonitor [-objects 2000] [-queries 500] [-ticks 20]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cqp"
)

func main() {
	var (
		objects   = flag.Int("objects", 2000, "number of moving vehicles")
		queries   = flag.Int("queries", 500, "number of moving range queries")
		ticks     = flag.Int("ticks", 20, "number of evaluation periods")
		rate      = flag.Float64("rate", 0.3, "fraction of vehicles reporting per period")
		querySide = flag.Float64("side", 0.01, "query square side (fraction of the city)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	run(os.Stdout, *objects, *queries, *ticks, *rate, *querySide, *seed)
}

func run(w io.Writer, objects, queries, ticks int, rate, querySide float64, seed int64) {
	fmt.Fprintf(w, "building city (lattice 32x32) and %d vehicles...\n", objects)
	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Seed: seed})
	world := cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: objects, Seed: seed})
	wl := cqp.NewWorkload(world, queries, querySide, seed)

	engine := cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 1, 1), GridN: 64})
	wl.Bootstrap(engine)
	engine.Step(world.Now())

	// Per-update and per-answer-tuple wire costs (see internal/wire):
	// an update tuple is (qid, oid, sign) = 17 bytes; a complete answer
	// tuple is (qid, oid) = 16 bytes.
	const updateBytes, tupleBytes = 17, 16

	fmt.Fprintf(w, "\n%6s %10s %12s %14s %14s %8s\n",
		"tick", "reports", "updates", "incr. KB", "complete KB", "ratio")
	for tick := 1; tick <= ticks; tick++ {
		objReports, qryReports := wl.Tick(engine, 5, rate, rate)
		updates := engine.Step(world.Now())

		// The complete answer the naive server would send: every query's
		// whole answer, every period.
		completeTuples := 0
		for j := 0; j < queries; j++ {
			ans, _ := engine.Answer(cqp.QueryID(j + 1))
			completeTuples += len(ans)
		}
		incKB := float64(len(updates)*updateBytes) / 1024
		compKB := float64(completeTuples*tupleBytes) / 1024
		ratio := 0.0
		if compKB > 0 {
			ratio = incKB / compKB
		}
		fmt.Fprintf(w, "%6d %10d %12d %14.1f %14.1f %7.1f%%\n",
			tick, objReports+qryReports, len(updates), incKB, compKB, 100*ratio)
	}

	st := engine.Stats()
	fmt.Fprintf(w, "\ntotals: +%d/−%d updates over %d steps; %d kNN recomputes; %d candidate checks\n",
		st.PositiveUpdates, st.NegativeUpdates, st.Steps, st.KNNRecomputes, st.CandidateChecks)
	fmt.Fprintln(w, "\nThe incremental stream is a small fraction of the complete answers —")
	fmt.Fprintln(w, "the bandwidth saving the paper reports as ~10% in Figure 5.")
}
