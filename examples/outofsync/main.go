// Command outofsync demonstrates the paper's out-of-sync client recovery
// protocol (Figure 4) over real TCP connections: a subscriber commits its
// answer, loses its connection, misses several update batches, and then
// reconnects. The server replies with the incremental committed→current
// diff — a handful of bytes — instead of the complete answer, and the
// client converges to exactly the server's state. A second run leg shows
// the checksum-guarded fallback to a complete answer after a server
// restart without a repository.
//
// Run with:
//
//	go run ./examples/outofsync
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"cqp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "outofsync:", err)
		os.Exit(1)
	}
}

func run() error {
	repoDir, err := os.MkdirTemp("", "cqp-outofsync-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(repoDir)

	srv, err := cqp.Listen("127.0.0.1:0", cqp.ServerConfig{
		Engine:        cqp.Options{Bounds: cqp.R(0, 0, 10, 10), GridN: 8},
		Interval:      20 * time.Millisecond, // the paper evaluates every 5s; we hurry
		RepositoryDir: filepath.Join(repoDir, "repo"),
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Println("location-aware server listening on", addr)

	// The "GPS feed" connection carries object reports; the subscriber
	// connection carries the continuous query. They fail independently.
	feed, err := cqp.Dial(addr)
	if err != nil {
		return err
	}
	defer feed.Close()
	sub, err := cqp.Dial(addr)
	if err != nil {
		return err
	}
	defer sub.Close()

	report := func(id cqp.ObjectID, x, y, t float64) {
		feed.ReportObject(cqp.ObjectUpdate{ID: id, Kind: cqp.Moving, Loc: cqp.Pt(x, y), T: t})
	}
	// T1: p1, p2 inside the region; p3, p4 elsewhere.
	report(1, 5.0, 5.0, 1)
	report(2, 4.5, 4.5, 1)
	report(3, 1.0, 1.0, 1)
	report(4, 9.0, 9.0, 1)
	if err := sub.RegisterQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.Range, Region: cqp.R(4, 4, 6, 6), T: 1}); err != nil {
		return err
	}
	waitFor(sub, cqp.EventUpdates)
	ans, _ := sub.Answer(1)
	fmt.Printf("\nT1: subscriber answer %v — committing\n", ans)
	if err := sub.Commit(1); err != nil {
		return err
	}
	waitFor(sub, cqp.EventCommitted)

	// The subscriber loses signal.
	fmt.Println("\nT2: subscriber loses its connection (battery died)")
	if err := sub.Drop(); err != nil {
		return err
	}
	waitFor(sub, cqp.EventDisconnected)

	// While it is away: p2 leaves, p3 and p4 enter. These updates are
	// emitted but lost — exactly Figure 4.
	report(2, 0.5, 9.5, 2)
	report(3, 4.2, 5.0, 3)
	report(4, 5.8, 5.2, 3)
	// Let the server tick the changes through while the subscriber is away.
	for srv.Stats().ObjectReports < 7 {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("T2–T3: while away, server emitted (−p2), (+p3), (+p4) — all lost")

	// Reconnect: recovery by incremental diff.
	fmt.Println("\nT4: subscriber reconnects")
	if err := sub.Reconnect(addr); err != nil {
		return err
	}
	ev := waitFor(sub, cqp.EventRecovered)
	fmt.Printf("recovery diff (%d tuples): %v\n", len(ev.Updates), ev.Updates)
	ans, _ = sub.Answer(1)
	fmt.Printf("subscriber answer after recovery: %v (correct: the naive replay would have kept p2)\n", ans)

	// Leg 2: server restart with the repository — recovery stays
	// incremental because committed answers are durable.
	fmt.Println("\n=== server restarts (repository keeps committed answers) ===")
	if err := sub.Commit(1); err != nil {
		return err
	}
	waitFor(sub, cqp.EventCommitted)
	repoPath := filepath.Join(repoDir, "repo")
	srv.Close()
	waitFor(sub, cqp.EventDisconnected)

	srv2, err := cqp.Listen("127.0.0.1:0", cqp.ServerConfig{
		Engine:        cqp.Options{Bounds: cqp.R(0, 0, 10, 10), GridN: 8},
		Interval:      20 * time.Millisecond,
		RepositoryDir: repoPath,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		return err
	}
	defer srv2.Close()
	addr2 := srv2.Addr().String()
	fmt.Println("new server on", addr2)

	feed2, err := cqp.Dial(addr2)
	if err != nil {
		return err
	}
	defer feed2.Close()
	feed2.ReportObject(cqp.ObjectUpdate{ID: 1, Kind: cqp.Moving, Loc: cqp.Pt(5, 5), T: 5})
	feed2.ReportObject(cqp.ObjectUpdate{ID: 3, Kind: cqp.Moving, Loc: cqp.Pt(4.2, 5), T: 5})
	feed2.ReportObject(cqp.ObjectUpdate{ID: 4, Kind: cqp.Moving, Loc: cqp.Pt(5.8, 5.2), T: 5})
	for srv2.NumObjects() < 3 {
		time.Sleep(10 * time.Millisecond)
	}

	if err := sub.Reconnect(addr2); err != nil {
		return err
	}
	ev = waitFor(sub, cqp.EventRecovered)
	fmt.Printf("recovery after restart: %d tuples (committed answer survived in the repository)\n", len(ev.Updates))
	ans, _ = sub.Answer(1)
	fmt.Printf("subscriber answer: %v\n", ans)
	return nil
}

// waitFor drains events until one of the wanted kind arrives.
func waitFor(c *cqp.Client, kind cqp.EventKind) cqp.Event {
	for ev := range c.Events() {
		if ev.Kind == kind {
			return ev
		}
	}
	panic("event channel closed")
}
