// Command predictive demonstrates querying the future (the paper's
// Example III): aircraft report position plus velocity vector, and an
// airspace-control query asks which aircraft will cross a restricted zone
// during a future time window. Whenever an aircraft files a new velocity
// (changes heading), only the resulting answer *changes* are emitted.
//
// Run with:
//
//	go run ./examples/predictive
package main

import (
	"fmt"
	"sort"

	"cqp"
)

func main() {
	e := cqp.MustNewEngine(cqp.Options{
		Bounds:            cqp.R(0, 0, 100, 100),
		GridN:             16,
		PredictiveHorizon: 120,
	})

	zone := cqp.R(60, 60, 80, 80)
	fmt.Printf("restricted zone %v, watch window t ∈ [60, 90]\n\n", zone)

	// T = 0: five aircraft file flight vectors.
	type flight struct {
		id   cqp.ObjectID
		loc  cqp.Point
		vel  cqp.Vector
		note string
	}
	t0 := []flight{
		{1, cqp.Pt(10, 10), cqp.Vec(0.9, 0.9), "heading northeast, will cross"},
		{2, cqp.Pt(5, 70), cqp.Vec(0.3, 0), "slow eastbound, will not reach"},
		{3, cqp.Pt(70, 5), cqp.Vec(0, 0.9), "northbound, will cross"},
		{4, cqp.Pt(90, 90), cqp.Vec(0.2, 0.2), "leaving the area"},
		{5, cqp.Pt(50, 50), cqp.Vec(-0.4, -0.4), "heading away"},
	}
	for _, f := range t0 {
		e.ReportObject(cqp.ObjectUpdate{ID: f.id, Kind: cqp.Predictive, Loc: f.loc, Vel: f.vel, T: 0})
		fmt.Printf("  aircraft %d at %v velocity %v — %s\n", f.id, f.loc, f.vel, f.note)
	}
	e.ReportQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.PredictiveRange, Region: zone, T1: 60, T2: 90, T: 0})

	fmt.Println("\n=== T = 0: initial prediction ===")
	printUpdates(e.Step(0))
	ans, _ := e.Answer(1)
	fmt.Printf("predicted intruders: %v\n", ans)

	// T = 30: three aircraft file new vectors. Aircraft 1 keeps its
	// heading, so although it reported, nothing about it is emitted.
	fmt.Println("\n=== T = 30: aircraft 1, 2, 3 file new vectors ===")
	e.ReportObject(cqp.ObjectUpdate{ID: 1, Kind: cqp.Predictive, Loc: cqp.Pt(37, 37), Vel: cqp.Vec(0.9, 0.9), T: 30})
	fmt.Println("  aircraft 1: same heading (no answer change expected)")
	e.ReportObject(cqp.ObjectUpdate{ID: 2, Kind: cqp.Predictive, Loc: cqp.Pt(14, 70), Vel: cqp.Vec(1.5, 0), T: 30})
	fmt.Println("  aircraft 2: accelerates east (now reaches the zone in time)")
	e.ReportObject(cqp.ObjectUpdate{ID: 3, Kind: cqp.Predictive, Loc: cqp.Pt(70, 32), Vel: cqp.Vec(0, -0.5), T: 30})
	fmt.Println("  aircraft 3: turns south (no longer crosses)")
	printUpdates(e.Step(30))
	ans, _ = e.Answer(1)
	fmt.Printf("predicted intruders: %v\n", ans)

	// T = 50: the controller widens the window.
	fmt.Println("\n=== T = 50: controller moves the window to [60, 120] ===")
	e.ReportQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.PredictiveRange, Region: zone, T1: 60, T2: 120, T: 50})
	printUpdates(e.Step(50))
	ans, _ = e.Answer(1)
	fmt.Printf("predicted intruders: %v\n", ans)
}

func printUpdates(updates []cqp.Update) {
	if len(updates) == 0 {
		fmt.Println("updates: (none)")
		return
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Object < updates[j].Object })
	fmt.Print("updates: ")
	for i, u := range updates {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(u)
	}
	fmt.Println()
}
