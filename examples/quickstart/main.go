// Command quickstart walks through the paper's Example I (Figure 1): a
// handful of moving and stationary objects, five continuous range queries
// (three of them moving), and the incremental positive/negative update
// stream the server emits as the database state changes between two
// snapshots.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"cqp"
)

func main() {
	e := cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 10, 10), GridN: 8})

	fmt.Println("=== Snapshot at T0 ===")
	// Nine objects: p1..p4 moving (white in the figure), p5..p9 stationary
	// (black).
	objects := []struct {
		id   cqp.ObjectID
		kind cqp.ObjectKind
		loc  cqp.Point
	}{
		{1, cqp.Moving, cqp.Pt(1.0, 8.0)},
		{2, cqp.Moving, cqp.Pt(4.0, 4.0)},
		{3, cqp.Moving, cqp.Pt(8.0, 8.0)},
		{4, cqp.Moving, cqp.Pt(6.0, 1.0)},
		{5, cqp.Stationary, cqp.Pt(1.5, 7.5)},
		{6, cqp.Stationary, cqp.Pt(4.5, 4.5)},
		{7, cqp.Stationary, cqp.Pt(3.5, 3.5)},
		{8, cqp.Stationary, cqp.Pt(7.0, 2.0)},
		{9, cqp.Stationary, cqp.Pt(9.5, 0.5)},
	}
	for _, o := range objects {
		e.ReportObject(cqp.ObjectUpdate{ID: o.id, Kind: o.kind, Loc: o.loc, T: 0})
	}
	// Five continuous range queries.
	queries := []struct {
		id     cqp.QueryID
		region cqp.Rect
	}{
		{1, cqp.R(0.5, 7.0, 2.0, 8.5)},
		{2, cqp.R(0.5, 0.5, 2.0, 2.0)},
		{3, cqp.R(3.0, 3.0, 5.0, 5.0)},
		{4, cqp.R(8.5, 4.5, 9.5, 5.5)},
		{5, cqp.R(7.5, 7.5, 8.5, 8.5)},
	}
	for _, q := range queries {
		e.ReportQuery(cqp.QueryUpdate{ID: q.id, Kind: cqp.Range, Region: q.region, T: 0})
	}
	printUpdates(e.Step(0))
	printAnswers(e, 5)

	fmt.Println("\n=== Snapshot at T1: p1..p4 and queries Q1, Q3, Q5 move ===")
	e.ReportObject(cqp.ObjectUpdate{ID: 1, Kind: cqp.Moving, Loc: cqp.Pt(2.5, 6.0), T: 1})
	e.ReportObject(cqp.ObjectUpdate{ID: 2, Kind: cqp.Moving, Loc: cqp.Pt(2.5, 2.5), T: 1})
	e.ReportObject(cqp.ObjectUpdate{ID: 3, Kind: cqp.Moving, Loc: cqp.Pt(8.0, 8.2), T: 1})
	e.ReportObject(cqp.ObjectUpdate{ID: 4, Kind: cqp.Moving, Loc: cqp.Pt(6.5, 1.8), T: 1})
	e.ReportQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.Range, Region: cqp.R(1.0, 6.5, 2.5, 8.0), T: 1})
	e.ReportQuery(cqp.QueryUpdate{ID: 3, Kind: cqp.Range, Region: cqp.R(4.0, 3.0, 6.0, 5.0), T: 1})
	e.ReportQuery(cqp.QueryUpdate{ID: 5, Kind: cqp.Range, Region: cqp.R(7.5, 7.7, 8.5, 8.7), T: 1})
	printUpdates(e.Step(1))
	printAnswers(e, 5)

	fmt.Println("\nNote: p3 moved and Q5 moved, yet no update was emitted for")
	fmt.Println("them — the object stayed inside the query. That silence is")
	fmt.Println("the incremental evaluation the paper is about.")

	st := e.Stats()
	fmt.Printf("\nEngine stats: %d steps, %d object reports, %d query reports, +%d/−%d updates\n",
		st.Steps, st.ObjectReports, st.QueryReports, st.PositiveUpdates, st.NegativeUpdates)
}

func printUpdates(updates []cqp.Update) {
	if len(updates) == 0 {
		fmt.Println("updates: (none)")
		return
	}
	sort.Slice(updates, func(i, j int) bool {
		if updates[i].Query != updates[j].Query {
			return updates[i].Query < updates[j].Query
		}
		return updates[i].Object < updates[j].Object
	})
	fmt.Print("updates: ")
	for i, u := range updates {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(u)
	}
	fmt.Println()
}

func printAnswers(e *cqp.Engine, numQueries cqp.QueryID) {
	for q := cqp.QueryID(1); q <= numQueries; q++ {
		ans, _ := e.Answer(q)
		fmt.Printf("  Q%d answer: %v\n", q, ans)
	}
}
