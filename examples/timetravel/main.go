// Command timetravel demonstrates the paper's full temporal range: "a
// range query may ask about the past, the present, or the future". A
// fleet moves across the city while every report is archived in the
// repository; the program then answers
//
//   - a PAST range query from the archive (who crossed the plaza between
//     t=100 and t=200?), via the B+tree-indexed location history,
//   - a PRESENT continuous range query from the engine, and
//   - a FUTURE predictive range query from the engine's trajectory join.
//
// Run with:
//
//	go run ./examples/timetravel
package main

import (
	"fmt"
	"io"
	"os"

	"cqp"
	"cqp/internal/repository"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "timetravel:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	dir, err := os.MkdirTemp("", "cqp-timetravel-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	repo, err := repository.Open(dir)
	if err != nil {
		return err
	}
	defer repo.Close()

	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Seed: 11})
	world := cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: 200, Seed: 11})
	engine := cqp.MustNewEngine(cqp.Options{
		Bounds: cqp.R(0, 0, 1, 1), GridN: 32, PredictiveHorizon: 4000,
	})
	plaza := cqp.RectAt(cqp.Pt(0.5, 0.5), 0.08)
	fmt.Fprintf(w, "the plaza: %v; fleet of %d vehicles\n\n", plaza, world.NumObjects())

	// Drive the fleet for 600 seconds, reporting (and archiving) every 60.
	for tick := 0; tick <= 10; tick++ {
		now := world.Now()
		for i := 0; i < world.NumObjects(); i++ {
			loc, vel := world.Object(i)
			engine.ReportObject(cqp.ObjectUpdate{
				ID: cqp.ObjectID(i + 1), Kind: cqp.Predictive, Loc: loc, Vel: vel, T: now,
			})
			if err := repo.AppendLocation(repository.LocationRecord{
				ID: cqp.ObjectID(i + 1), Loc: loc, T: now,
			}); err != nil {
				return err
			}
		}
		engine.Step(now)
		world.Advance(60)
	}
	now := world.Now()

	// PAST: who was in the plaza between t=100 and t=300?
	past, err := repo.HistoricalRange(plaza, 100, 300)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "PAST    vehicles reported inside the plaza during [100,300]: %v\n", past)
	if len(past) > 0 {
		traj, err := repo.Trajectory(past[0], 0, now)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "        vehicle %d left %d archived positions; first %v at t=%.0f, last %v at t=%.0f\n",
			past[0], len(traj), traj[0].Loc, traj[0].T, traj[len(traj)-1].Loc, traj[len(traj)-1].T)
	}

	// PRESENT: a continuous range query over the plaza right now.
	engine.ReportQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.Range, Region: plaza, T: now})
	engine.Step(now)
	present, _ := engine.Answer(1)
	fmt.Fprintf(w, "PRESENT vehicles inside the plaza now (t=%.0f): %v\n", now, present)

	// FUTURE: who is predicted to cross the plaza in the next half hour?
	engine.ReportQuery(cqp.QueryUpdate{
		ID: 2, Kind: cqp.PredictiveRange, Region: plaza,
		T1: now, T2: now + 1800, T: now,
	})
	engine.Step(now)
	future, _ := engine.Answer(2)
	fmt.Fprintf(w, "FUTURE  vehicles predicted to cross the plaza within 30 min: %v\n", future)

	fmt.Fprintf(w, "\narchive: %d bytes of location history, indexed by a %d-entry B+tree\n",
		repo.NumArchivedBytes(), 11*world.NumObjects())
	return nil
}
