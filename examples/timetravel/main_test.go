package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example in-process: it must complete without
// error and print all three temporal sections.
func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"PAST", "PRESENT", "FUTURE", "archive:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
