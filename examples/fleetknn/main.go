// Command fleetknn demonstrates continuous k-nearest-neighbor queries
// (the paper's Example II) on a taxi-dispatch scenario: a fleet of taxis
// moves over a road network while dispatch keeps, for each waiting
// customer, the k nearest taxis continuously up to date. The engine emits
// an update pair (−old, +new) only when a taxi displaces another from
// some customer's top-k; everything else is silence.
//
// Run with:
//
//	go run ./examples/fleetknn [-taxis 300] [-customers 5] [-k 3] [-ticks 15]
package main

import (
	"flag"
	"fmt"
	"sort"

	"cqp"
)

func main() {
	var (
		taxis     = flag.Int("taxis", 300, "fleet size")
		customers = flag.Int("customers", 5, "number of waiting customers")
		k         = flag.Int("k", 3, "taxis tracked per customer")
		ticks     = flag.Int("ticks", 15, "number of evaluation periods")
		seed      = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Seed: *seed})
	world := cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: *taxis, Seed: *seed})
	engine := cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 1, 1), GridN: 32})

	// Taxis report their initial positions.
	for i := 0; i < *taxis; i++ {
		loc, _ := world.Object(i)
		engine.ReportObject(cqp.ObjectUpdate{ID: cqp.ObjectID(i + 1), Kind: cqp.Moving, Loc: loc})
	}
	// Customers wait at fixed street corners: continuous kNN queries.
	rng := world.Rand()
	for c := 0; c < *customers; c++ {
		corner := net.Node(net.RandomNode(rng))
		engine.ReportQuery(cqp.QueryUpdate{
			ID: cqp.QueryID(c + 1), Kind: cqp.KNN, Focal: corner, K: *k,
		})
		fmt.Printf("customer %d waits at %v\n", c+1, corner)
	}
	updates := engine.Step(0)
	fmt.Printf("\ninitial assignment (%d updates):\n", len(updates))
	printAssignments(engine, *customers)

	for tick := 1; tick <= *ticks; tick++ {
		// All taxis move; all report (dispatch tracks the whole fleet).
		world.Advance(5)
		for i := 0; i < *taxis; i++ {
			loc, _ := world.Object(i)
			engine.ReportObject(cqp.ObjectUpdate{
				ID: cqp.ObjectID(i + 1), Kind: cqp.Moving, Loc: loc, T: world.Now(),
			})
		}
		updates := engine.Step(world.Now())
		if len(updates) == 0 {
			fmt.Printf("tick %2d: no top-%d changes\n", tick, *k)
			continue
		}
		sort.Slice(updates, func(i, j int) bool {
			if updates[i].Query != updates[j].Query {
				return updates[i].Query < updates[j].Query
			}
			return !updates[i].Positive && updates[j].Positive
		})
		fmt.Printf("tick %2d: ", tick)
		for i, u := range updates {
			if i > 0 {
				fmt.Print(", ")
			}
			sign := "-"
			if u.Positive {
				sign = "+"
			}
			fmt.Printf("customer %d: %staxi %d", u.Query, sign, u.Object)
		}
		fmt.Println()
	}

	fmt.Println("\nfinal assignments:")
	printAssignments(engine, *customers)
	st := engine.Stats()
	fmt.Printf("\n%d exact kNN recomputations over %d steps (dirty-circle pruning skipped the rest)\n",
		st.KNNRecomputes, st.Steps)
}

func printAssignments(engine *cqp.Engine, customers int) {
	for c := 1; c <= customers; c++ {
		ans, _ := engine.Answer(cqp.QueryID(c))
		fmt.Printf("  customer %d ← taxis %v\n", c, ans)
	}
}
