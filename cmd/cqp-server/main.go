// Command cqp-server runs the location-aware server: a TCP endpoint that
// accepts object/query reports, evaluates all continuous queries in bulk
// every interval, and streams incremental positive/negative updates to
// subscribers, with durable committed answers for out-of-sync recovery.
//
// Example:
//
//	cqp-server -addr :7171 -interval 5s -grid 64 -repo /var/lib/cqp
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cqp"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7171", "listen address")
		interval = flag.Duration("interval", 5*time.Second, "bulk evaluation period (the paper's Δt)")
		gridN    = flag.Int("grid", 64, "grid cells per axis")
		size     = flag.Float64("size", 1.0, "monitored space is the square [0,size)²")
		horizon  = flag.Float64("horizon", 100, "predictive trajectory horizon (seconds)")
		shards   = flag.Int("shards", 1, "spatial shards evaluating in parallel (1 = single engine)")

		parallelism = flag.Int("parallelism", 0, "join-phase worker count per engine (0 = serial); with -shards > 1 each tile engine gets this many workers")

		shardHalo   = flag.Float64("shard-halo", 0, "halo margin around each tile engine's region (0 = one grid cell)")
		shardRepart = flag.Bool("shard-repartition", false, "split hot tiles and merge cold ones under load skew (shards > 1)")
		repoDir     = flag.String("repo", "", "repository directory for durable commits and location history (empty = in-memory only)")

		readTO    = flag.Duration("read-timeout", 45*time.Second, "reap sessions silent for this long (0 = never)")
		writeTO   = flag.Duration("write-timeout", 5*time.Second, "per-frame write deadline (<0 = none)")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "server→client heartbeat period (0 = off)")
		outbox    = flag.Int("outbox", 256, "per-session outbound queue depth; size it from the measured shed point (cqp-bench -exp server)")
		outboxPol = flag.String("outbox-policy", "shed", "full-outbox behavior: shed (disconnect, heal via wakeup) | drop-newest (drop the frame, heal via commit checksum)")
		maxFrame  = flag.Uint("max-frame", 1<<20, "largest accepted inbound frame in bytes")

		metricsAddr = flag.String("metrics", "", "serve a JSON metrics snapshot and pprof on this address (e.g. :6060; empty = off)")
		metricsLog  = flag.Duration("metrics-log", 0, "log a metrics snapshot this often (0 = off; implies metrics collection)")
	)
	flag.Parse()

	var policy cqp.OutboxPolicy
	switch *outboxPol {
	case "shed":
		policy = cqp.ShedSession
	case "drop-newest":
		policy = cqp.DropNewest
	default:
		fmt.Fprintf(os.Stderr, "cqp-server: unknown -outbox-policy %q (shed|drop-newest)\n", *outboxPol)
		os.Exit(2)
	}

	var reg *cqp.MetricsRegistry
	if *metricsAddr != "" || *metricsLog > 0 {
		reg = cqp.NewMetricsRegistry()
	}

	srv, err := cqp.Listen(*addr, cqp.ServerConfig{
		Engine: cqp.Options{
			Bounds:            cqp.R(0, 0, *size, *size),
			GridN:             *gridN,
			PredictiveHorizon: *horizon,
			Parallelism:       *parallelism,
		},
		Shards:            *shards,
		ShardHalo:         *shardHalo,
		ShardRepartition:  cqp.ShardRepartitionOptions{Enable: *shardRepart},
		Interval:          *interval,
		RepositoryDir:     *repoDir,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		HeartbeatInterval: *heartbeat,
		OutboxSize:        *outbox,
		OutboxPolicy:      policy,
		MaxFrame:          uint32(*maxFrame),
		Metrics:           reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-server:", err)
		os.Exit(1)
	}
	log.Printf("cqp-server listening on %s (Δt=%v, grid %dx%d, space [0,%g)²)",
		srv.Addr(), *interval, *gridN, *gridN, *size)
	if *repoDir != "" {
		log.Printf("repository: %s", *repoDir)
	}
	stopMetrics := make(chan struct{})
	if *metricsAddr != "" {
		//lint:allow golifecycle the metrics listener serves for the whole process lifetime and dies with main; there is nothing to join
		go func() {
			log.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, cqp.MetricsHandler(reg)); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *metricsLog > 0 {
		go cqp.MetricsLogLoop(reg, *metricsLog, log.Printf, stopMetrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	close(stopMetrics)
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	st := srv.Stats()
	log.Printf("served %d steps: %d object reports, %d query reports, +%d/−%d updates",
		st.Steps, st.ObjectReports, st.QueryReports, st.PositiveUpdates, st.NegativeUpdates)
}
