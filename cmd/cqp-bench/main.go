// Command cqp-bench regenerates the paper's evaluation tables and the
// ablation experiments from DESIGN.md, printing one row per measured
// point in the same shape the paper reports.
//
// Experiments:
//
//	fig5a      answer size vs. object update rate (paper Figure 5a)
//	fig5b      answer size vs. query side length (paper Figure 5b)
//	shared     shared incremental engine vs. snapshot re-evaluation CPU
//	qindex     shared grid vs. Q-index for stationary queries
//	gridsize   grid granularity sweep
//	recovery   out-of-sync diff recovery vs. full-answer resend
//	bulk       bulk vs. per-report processing
//	predictive predictive queries: shared grid vs. TPR-tree
//	parallel   gather-phase parallelism sweep
//	shard      spatial shard count sweep (writes BENCH_shard.json)
//	core       single-engine steady-state Step cost sweep (appends a
//	           labelled run to BENCH_core.json; see -label)
//	server     open-loop server capacity: delivery-latency percentiles
//	           vs. offered report rate plus the shed point, over the
//	           full wire stack (appends a labelled run to
//	           BENCH_server.json; see -rates, -label)
//	all        everything above
//
// Examples:
//
//	cqp-bench -exp fig5a
//	cqp-bench -exp all -objects 5000 -queries 5000
//	cqp-bench -exp fig5a -paper-scale     # 100K x 100K, as in the paper
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cqp/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: fig5a|fig5b|shared|qindex|gridsize|recovery|bulk|predictive|parallel|shard|core|server|all")
		label       = flag.String("label", "", "run label recorded in BENCH_core.json / BENCH_server.json")
		shards      = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -exp shard")
		parallelism = flag.String("parallelism", "", "comma-separated join worker counts: the sweep list for -exp parallel (default 1,2,4,8) and the per-point engine settings for -exp core (default 0 = serial; 0 is allowed)")
		objects     = flag.Int("objects", 20000, "moving object population")
		queries     = flag.Int("queries", 20000, "moving query population")
		ticks       = flag.Int("ticks", 8, "measured evaluation periods per point")
		seed        = flag.Int64("seed", 1, "random seed")
		paperScale  = flag.Bool("paper-scale", false, "use the paper's 100K objects x 100K queries")

		rates    = flag.String("rates", "200,400,800", "comma-separated offered rates (reports/sec) for -exp server")
		duration = flag.Duration("duration", 2*time.Second, "paced phase per server point for -exp server")
		sessions = flag.Int("sessions", 4, "concurrent client sessions for -exp server")
		slo      = flag.Duration("slo", time.Second, "delivery p99 SLO bounding the shed probe for -exp server")
	)
	flag.Parse()

	if *paperScale {
		*objects, *queries = 100000, 100000
	}
	base := bench.Fig5Config{
		Objects: *objects, Queries: *queries, Ticks: *ticks, Seed: *seed,
	}.WithDefaults()

	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
		}
	}
	fmt.Printf("workload: %d objects, %d queries, Δt=%.0fs, %d ticks/point, seed %d\n\n",
		base.Objects, base.Queries, base.DT, base.Ticks, base.Seed)

	run("fig5a", func() { fig5a(base) })
	run("fig5b", func() { fig5b(base) })
	run("shared", func() { shared(base) })
	run("qindex", func() { qindexExp(base) })
	run("gridsize", func() { gridsize(base) })
	run("recovery", func() { recovery(base) })
	run("bulk", func() { bulk(base) })
	run("predictive", func() { predictive(base) })
	run("parallel", func() { parallelExp(base, *parallelism) })
	run("shard", func() { shardExp(base, *shards) })
	run("core", func() { coreExp(base, *label, *parallelism) })
	run("server", func() { serverExp(*label, *rates, *duration, *sessions, *slo, *seed) })

	switch *exp {
	case "fig5a", "fig5b", "shared", "qindex", "gridsize", "recovery", "bulk", "predictive", "parallel", "shard", "core", "server", "all":
	default:
		fmt.Fprintf(os.Stderr, "cqp-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fig5a(base bench.Fig5Config) {
	fmt.Println("=== Figure 5(a): answer size vs. object update rate (query side 0.01) ===")
	fmt.Printf("%8s %14s %14s %8s %12s\n", "rate", "incr. KB", "complete KB", "ratio", "step ms")
	for _, rate := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		cfg := base
		cfg.Rate = rate
		cfg.QuerySide = 0.01
		r := bench.RunFig5Point(cfg)
		fmt.Printf("%7.0f%% %14.1f %14.1f %7.1f%% %12.1f\n",
			rate*100, r.IncrementalKB, r.CompleteKB, 100*r.IncrementalKB/r.CompleteKB, r.StepMillis)
	}
	fmt.Println()
}

func fig5b(base bench.Fig5Config) {
	fmt.Println("=== Figure 5(b): answer size vs. query side length (rate 30%) ===")
	fmt.Printf("%8s %14s %14s %8s %12s\n", "side", "incr. KB", "complete KB", "ratio", "step ms")
	for _, side := range []float64{0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04} {
		cfg := base
		cfg.Rate = 0.3
		cfg.QuerySide = side
		r := bench.RunFig5Point(cfg)
		fmt.Printf("%8.3f %14.1f %14.1f %7.1f%% %12.1f\n",
			side, r.IncrementalKB, r.CompleteKB, 100*r.IncrementalKB/r.CompleteKB, r.StepMillis)
	}
	fmt.Println()
}

func shared(base bench.Fig5Config) {
	fmt.Println("=== Ablation 1: shared incremental engine vs. snapshot re-evaluation (CPU) ===")
	fmt.Println("--- scalability in the number of concurrent queries (10% update rate) ---")
	fmt.Printf("%10s %16s %16s %9s\n", "queries", "incremental ms", "snapshot ms", "speedup")
	for _, q := range []int{1000, 2000, 5000, 10000, base.Queries} {
		cfg := base
		cfg.Queries = q
		cfg.Rate, cfg.QueryRate = 0.1, 0.1
		r := bench.RunStrategyComparison(cfg, false)
		fmt.Printf("%10d %16.1f %16.1f %8.1fx\n",
			q, r.IncrementalMillis, r.SnapshotMillis, r.SnapshotMillis/r.IncrementalMillis)
	}
	fmt.Println()
	fmt.Println("=== Ablation 2: CPU vs. update rate (cost of incremental evaluation is")
	fmt.Println("    proportional to change; re-evaluation is flat) ===")
	fmt.Printf("%8s %16s %16s %9s\n", "rate", "incremental ms", "snapshot ms", "speedup")
	for _, rate := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 1.0} {
		cfg := base
		cfg.Rate, cfg.QueryRate = rate, rate
		r := bench.RunStrategyComparison(cfg, false)
		fmt.Printf("%7.0f%% %16.1f %16.1f %8.1fx\n",
			rate*100, r.IncrementalMillis, r.SnapshotMillis, r.SnapshotMillis/r.IncrementalMillis)
	}
	fmt.Println()
}

func qindexExp(base bench.Fig5Config) {
	fmt.Println("=== Ablation 4: shared grid vs. Q-index vs. VCI (stationary queries) ===")
	fmt.Printf("%10s %16s %16s %14s %10s\n", "queries", "incremental ms", "snapshot ms", "q-index ms", "vci ms")
	for _, q := range []int{1000, 5000, 10000} {
		cfg := base
		cfg.Queries = q
		r := bench.RunStrategyComparison(cfg, true)
		fmt.Printf("%10d %16.1f %16.1f %14.1f %10.1f\n",
			q, r.IncrementalMillis, r.SnapshotMillis, r.QIndexMillis, r.VCIMillis)
	}
	fmt.Println()
}

func gridsize(base bench.Fig5Config) {
	fmt.Println("=== Ablation 3: grid granularity ===")
	sizes := []int{16, 32, 64, 128, 256}
	times := bench.RunGridSweep(base, sizes)
	fmt.Printf("%10s %12s\n", "grid NxN", "step ms")
	for i, n := range sizes {
		fmt.Printf("%7dx%-3d %12.1f\n", n, n, times[i])
	}
	fmt.Println()
}

func recovery(base bench.Fig5Config) {
	fmt.Println("=== Ablation 5: out-of-sync recovery, diff vs. complete answer ===")
	fmt.Printf("%14s %12s %12s %12s %12s\n", "missed ticks", "diff KB", "full KB", "diff tuples", "answer size")
	for _, r := range bench.RunRecovery(base, []int{1, 2, 5, 10, 20, 50}) {
		fmt.Printf("%14d %12.3f %12.3f %12d %12d\n",
			r.MissedTicks, r.DiffKB, r.FullKB, r.DiffTuples, r.AnswerSize)
	}
	fmt.Println()
}

func predictive(base bench.Fig5Config) {
	fmt.Println("=== Ablation 7: predictive queries — shared grid (incremental) vs. TPR-tree ===")
	fmt.Printf("%8s %16s %12s %12s %14s\n", "rate", "incremental ms", "tpr ms", "updates", "answer tuples")
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		cfg := base
		cfg.Rate, cfg.QueryRate = rate, rate
		r := bench.RunPredictiveComparison(cfg)
		fmt.Printf("%7.0f%% %16.1f %12.1f %12.0f %14.0f\n",
			rate*100, r.IncrementalMillis, r.TPRMillis, r.Updates, r.AnswerTuples)
	}
	fmt.Println()
}

// parseCounts parses a comma-separated integer list flag; values below
// min are rejected.
func parseCounts(list, flagName string, min int) []int {
	var counts []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < min {
			fmt.Fprintf(os.Stderr, "cqp-bench: bad %s entry %q\n", flagName, f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	return counts
}

func parallelExp(base bench.Fig5Config, list string) {
	fmt.Println("=== Ablation 8: join-phase parallelism (100% update rate) ===")
	workers := []int{1, 2, 4, 8}
	if list != "" {
		workers = parseCounts(list, "-parallelism", 1)
	}
	cfg := base
	cfg.Rate, cfg.QueryRate = 1.0, 0.3
	times := bench.RunParallelSweep(cfg, workers)
	fmt.Printf("%10s %12s %9s\n", "workers", "step ms", "speedup")
	for i, w := range workers {
		fmt.Printf("%10d %12.1f %8.1fx\n", w, times[i], times[0]/times[i])
	}
	fmt.Println()
}

func shardExp(base bench.Fig5Config, list string) {
	counts := parseCounts(list, "-shards", 1)
	fmt.Println("=== Shard scaling: Step latency vs. spatial shard count (30% update rate) ===")
	results := bench.RunShardSweep(base, counts)
	fmt.Printf("%10s %8s %12s %9s %12s\n", "shards", "tiles", "step ms", "speedup", "updates/tick")
	for _, r := range results {
		fmt.Printf("%10d %4dx%-3d %12.1f %8.2fx %12.0f\n",
			r.Shards, r.Rows, r.Cols, r.StepMS, results[0].StepMS/r.StepMS, r.Updates)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_shard.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqp-bench: writing BENCH_shard.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nwrote BENCH_shard.json")
	fmt.Println()
}

// coreExp runs the single-engine core sweep and appends the run to
// BENCH_core.json, the perf-regression trajectory of the unsharded hot
// path (one Step == one op; ns/op, B/op, allocs/op as a testing.B
// benchmark would report them).
func coreExp(base bench.Fig5Config, label, parallelism string) {
	fmt.Println("=== Core engine: steady-state Step cost (30% update rate) ===")
	levels := []int{0}
	if parallelism != "" {
		levels = parseCounts(parallelism, "-parallelism", 0)
	}
	var points []bench.CorePoint
	for _, p := range levels {
		cfg := base
		cfg.Parallelism = p
		pts := bench.RunCoreSweep(cfg)
		if p > 0 {
			// Distinguish parallel variants of the same population so a
			// single run can carry serial and parallel points side by
			// side (the parallelism field holds the exact value).
			for i := range pts {
				pts[i].Name += fmt.Sprintf("-p%d", p)
			}
		}
		points = append(points, pts...)
	}
	fmt.Printf("%10s %10s %10s %14s %14s %14s %14s\n",
		"point", "objects", "queries", "ms/step", "KB/step", "allocs/step", "updates/step")
	for _, p := range points {
		fmt.Printf("%10s %10d %10d %14.1f %14.0f %14.0f %14.0f\n",
			p.Name, p.Objects, p.Queries, p.NsPerStep/1e6, p.BytesPerStep/1024,
			p.AllocsPerStep, p.UpdatesPerStep)
	}

	run := bench.CoreRun{
		Label:  label,
		When:   time.Now().UTC().Format("2006-01-02"),
		Points: points,
	}
	var runs []bench.CoreRun
	if data, err := os.ReadFile("BENCH_core.json"); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			fmt.Fprintf(os.Stderr, "cqp-bench: parsing existing BENCH_core.json: %v\n", err)
			os.Exit(1)
		}
	}
	runs = append(runs, run)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_core.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqp-bench: writing BENCH_core.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nwrote BENCH_core.json")
	fmt.Println()
}

func bulk(base bench.Fig5Config) {
	fmt.Println("=== Ablation 6: bulk vs. per-report evaluation ===")
	fmt.Printf("%12s %12s %14s %9s\n", "batch size", "bulk ms", "one-by-one ms", "speedup")
	for _, r := range bench.RunBulk(base, []int{100, 500, 1000, 5000}) {
		fmt.Printf("%12d %12.1f %14.1f %8.1fx\n",
			r.BatchSize, r.BulkMillis, r.OneByOneMS, r.OneByOneMS/r.BulkMillis)
	}
	fmt.Println()
}

// serverExp runs the open-loop server-capacity sweep and appends the
// labelled run to BENCH_server.json: the rate-vs-latency curve of the
// full wire stack plus the shed point found by the doubling probe.
func serverExp(label, rates string, duration time.Duration, sessions int, slo time.Duration, seed int64) {
	fmt.Println("=== Server capacity: open-loop load, delivery latency vs. offered rate ===")
	var rr []float64
	for _, f := range strings.Split(rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "cqp-bench: bad -rates entry %q\n", f)
			os.Exit(2)
		}
		rr = append(rr, v)
	}
	cfg := bench.ServerSweepConfig{
		Rates:     rr,
		Duration:  duration,
		Sessions:  sessions,
		Seed:      seed,
		SLO:       slo,
		ProbeShed: true,
	}
	run, err := bench.RunServerSweep(cfg, label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqp-bench: server sweep: %v\n", err)
		os.Exit(1)
	}
	run.When = time.Now().UTC().Format("2006-01-02")

	fmt.Printf("%10s %10s %10s %10s %10s %10s %8s\n",
		"offered/s", "achieved", "delivered", "p50 ms", "p99 ms", "max lag", "sheds")
	for _, p := range run.Points {
		fmt.Printf("%10.0f %10.0f %10d %10.1f %10.1f %9.1fms %8d\n",
			p.OfferedRate, p.AchievedRate, p.Delivered, p.P50Ms, p.P99Ms, p.MaxLagMs, p.Sheds)
	}
	if run.ShedPoint > 0 {
		fmt.Printf("shed point: ~%.0f reports/sec (first rate to shed, drop, miss 90%% of offered, or blow the %v p99 SLO)\n", run.ShedPoint, slo)
	} else {
		fmt.Println("shed point: not reached within the probe range")
	}

	var runs []bench.ServerRun
	if data, err := os.ReadFile("BENCH_server.json"); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			fmt.Fprintf(os.Stderr, "cqp-bench: parsing existing BENCH_server.json: %v\n", err)
			os.Exit(1)
		}
	}
	runs = append(runs, run)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqp-bench: writing BENCH_server.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nwrote BENCH_server.json")
	fmt.Println()
}
