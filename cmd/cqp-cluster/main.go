// Command cqp-cluster runs the location-aware server with its query
// processor distributed across worker processes: a coordinator owns the
// spatial router and the TCP front end, and each tile's engine lives in
// a worker process the coordinator spawns by re-executing this binary.
//
// The merged update stream clients see is bit-identical to the
// in-process engine's. Workers are supervised: heartbeat deadlines
// detect dead or wedged workers, their tiles degrade to in-process
// fallback engines (clients notice nothing), and recovered workers are
// respawned with backoff and handed their tiles back only after a
// checksum-verified resync. See internal/cluster.
//
// Example:
//
//	cqp-cluster -addr :7171 -workers 4 -rows 2 -cols 2 -interval 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cqp/internal/cluster"
	"cqp/internal/core"
	"cqp/internal/geo"
	"cqp/internal/obs"
	"cqp/internal/server"
	"cqp/internal/shard"
)

func main() {
	// When the coordinator re-executes this binary as a tile worker, the
	// CQP_CLUSTER_* environment is set and the process never reaches the
	// flag parsing below.
	if handled, err := cluster.RunWorkerFromEnv(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqp-cluster worker:", err)
			os.Exit(1)
		}
		return
	}

	var (
		addr     = flag.String("addr", "127.0.0.1:7171", "listen address")
		interval = flag.Duration("interval", 5*time.Second, "bulk evaluation period (the paper's Δt)")
		gridN    = flag.Int("grid", 64, "grid cells per axis (per tile)")
		size     = flag.Float64("size", 1.0, "monitored space is the square [0,size)²")
		horizon  = flag.Float64("horizon", 100, "predictive trajectory horizon (seconds)")
		rows     = flag.Int("rows", 2, "tile rows of the spatial split")
		cols     = flag.Int("cols", 2, "tile columns of the spatial split")
		workers  = flag.Int("workers", 2, "worker processes; tiles are pinned round-robin")
		repoDir  = flag.String("repo", "", "repository directory for durable commits (empty = in-memory only)")

		shardHalo   = flag.Float64("shard-halo", 0, "halo margin around each tile engine's region (0 = one grid cell)")
		shardRepart = flag.Bool("shard-repartition", false, "split hot tiles and merge cold ones under load skew")

		hbInterval = flag.Duration("worker-heartbeat", 100*time.Millisecond, "coordinator→worker heartbeat period")
		hbTimeout  = flag.Duration("worker-timeout", time.Second, "heartbeat-echo age past which a worker is declared dead")
		resyncTO   = flag.Duration("resync-timeout", 2*time.Second, "deadline for a recovered worker's verified resync")

		metricsAddr = flag.String("metrics", "", "serve a JSON metrics snapshot and pprof on this address (empty = off)")
		metricsLog  = flag.Duration("metrics-log", 0, "log a metrics snapshot this often (0 = off)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" || *metricsLog > 0 {
		reg = obs.NewRegistry()
	}

	copt := core.Options{
		Bounds:            geo.R(0, 0, *size, *size),
		GridN:             *gridN,
		PredictiveHorizon: *horizon,
		Metrics:           reg,
	}
	if reg != nil {
		copt.Clock = obs.WallClock
	}
	spawner, err := cluster.NewExecSpawner([]string{os.Args[0]})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-cluster:", err)
		os.Exit(1)
	}
	cl, err := cluster.New(cluster.Config{
		Shard: shard.Options{
			Core: copt, Rows: *rows, Cols: *cols,
			Halo:        *shardHalo,
			Repartition: shard.RepartitionOptions{Enable: *shardRepart},
		},
		Workers:           *workers,
		Spawner:           spawner,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
		ResyncTimeout:     *resyncTO,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-cluster:", err)
		os.Exit(1)
	}

	// The server owns the cluster from here: Close closes it.
	srv, err := server.Listen(*addr, server.Config{
		Engine:        copt,
		Processor:     cl,
		Interval:      *interval,
		RepositoryDir: *repoDir,
		Metrics:       reg,
	})
	if err != nil {
		cl.Close()
		fmt.Fprintln(os.Stderr, "cqp-cluster:", err)
		os.Exit(1)
	}
	log.Printf("cqp-cluster listening on %s (Δt=%v, %dx%d tiles on %d workers, space [0,%g)²)",
		srv.Addr(), *interval, *rows, *cols, *workers, *size)
	if *repoDir != "" {
		log.Printf("repository: %s", *repoDir)
	}

	stopMetrics := make(chan struct{})
	if *metricsAddr != "" {
		//lint:allow golifecycle the metrics listener serves for the whole process lifetime and dies with main; there is nothing to join
		go func() {
			log.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, obs.Handler(reg)); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *metricsLog > 0 {
		go obs.LogLoop(reg, *metricsLog, log.Printf, stopMetrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	close(stopMetrics)
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
