// Command cqp-replay feeds a cqp-gen trace into a running cqp-server
// over TCP, pacing ticks in real or accelerated time, and reports
// throughput. Together with cqp-gen and cqp-client it forms a complete
// load-testing rig:
//
//	cqp-gen -objects 10000 -queries 1000 -ticks 100 -o trace.csv
//	cqp-server -addr :7171 -interval 1s &
//	cqp-replay -addr 127.0.0.1:7171 -trace trace.csv -speedup 10
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cqp"
	"cqp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cqp-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7171", "server address")
		traceFile = flag.String("trace", "-", "trace file from cqp-gen (default stdin)")
		speedup   = flag.Float64("speedup", 1, "time acceleration factor (0 = as fast as possible)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	c, err := cqp.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	// Drain events; the replayer only feeds.
	go func() {
		for range c.Events() {
		}
	}()

	var (
		reports  int
		lastTime = -1.0
		started  = time.Now()
	)
	tr := trace.NewReader(in)
	for {
		rec, err := tr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}

		// Pace: wait until the trace time maps to wall time.
		if *speedup > 0 && rec.Time > lastTime {
			lastTime = rec.Time
			target := time.Duration(rec.Time / *speedup * float64(time.Second))
			if sleep := target - time.Since(started); sleep > 0 {
				time.Sleep(sleep)
			}
		}

		if rec.IsQuery {
			err = c.RegisterQuery(rec.QueryUpdate())
		} else {
			err = c.ReportObject(rec.ObjectUpdate())
		}
		if err != nil {
			return err
		}
		reports++
		if reports%10000 == 0 {
			fmt.Fprintf(os.Stderr, "cqp-replay: %d reports (%.0f/s)\n",
				reports, float64(reports)/time.Since(started).Seconds())
		}
	}
	elapsed := time.Since(started)
	fmt.Printf("replayed %d reports in %v (%.0f reports/s)\n",
		reports, elapsed.Round(time.Millisecond), float64(reports)/elapsed.Seconds())
	return nil
}
