// Command cqp-gen generates network-based moving-object traces in the
// spirit of the Brinkhoff generator the paper evaluates on. It writes a
// CSV trace of timestamped location reports (and optionally query-region
// reports) that can be replayed against a server or inspected directly.
//
// Trace format (one report per line):
//
//	O,<tick>,<time>,<object-id>,<x>,<y>,<vx>,<vy>
//	Q,<tick>,<time>,<query-id>,<minx>,<miny>,<maxx>,<maxy>
//
// Example:
//
//	cqp-gen -objects 10000 -queries 1000 -ticks 100 -rate 0.3 -o trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cqp"
	"cqp/internal/trace"
)

func main() {
	var (
		objects   = flag.Int("objects", 10000, "number of moving objects")
		queries   = flag.Int("queries", 1000, "number of moving queries")
		ticks     = flag.Int("ticks", 100, "number of evaluation periods to generate")
		dt        = flag.Float64("dt", 5, "seconds per period")
		rate      = flag.Float64("rate", 0.3, "fraction of objects/queries reporting per period")
		querySide = flag.Float64("side", 0.01, "query square side")
		lattice   = flag.Int("lattice", 32, "road network lattice size")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "-", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqp-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()
	tw := trace.NewWriter(bw)

	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Lattice: *lattice, Seed: *seed})
	world := cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: *objects, Seed: *seed})
	rng := rand.New(rand.NewSource(*seed + 1))

	emitObject := func(tick, i int) error {
		loc, vel := world.Object(i)
		return tw.WriteObject(tick, world.Now(), cqp.ObjectID(i+1), loc, vel)
	}
	emitQuery := func(tick, j int) error {
		loc, _ := world.Object(j % *objects)
		return tw.WriteQuery(tick, world.Now(), cqp.QueryID(j+1), cqp.RectAt(loc, *querySide))
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "cqp-gen:", err)
		os.Exit(1)
	}

	// Tick 0: full population.
	for i := 0; i < *objects; i++ {
		if err := emitObject(0, i); err != nil {
			fail(err)
		}
	}
	for j := 0; j < *queries; j++ {
		if err := emitQuery(0, j); err != nil {
			fail(err)
		}
	}

	for tick := 1; tick <= *ticks; tick++ {
		world.Advance(*dt)
		for i := 0; i < *objects; i++ {
			if rng.Float64() < *rate {
				if err := emitObject(tick, i); err != nil {
					fail(err)
				}
			}
		}
		for j := 0; j < *queries; j++ {
			if rng.Float64() < *rate {
				if err := emitQuery(tick, j); err != nil {
					fail(err)
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "cqp-gen: wrote %d reports over %d ticks (%d objects, %d queries, rate %.0f%%)\n",
		tw.Count(), *ticks, *objects, *queries, 100**rate)
}
