// Command cqp-client subscribes to a continuous query on a running
// cqp-server and prints the incremental update stream as it arrives. It
// can simultaneously simulate a fleet of moving objects feeding the
// server, which makes it a self-contained demo against cqp-server.
//
// Examples:
//
//	cqp-client -addr 127.0.0.1:7171 -query 1 -region 0.4,0.4,0.6,0.6
//	cqp-client -addr 127.0.0.1:7171 -query 2 -kind knn -focal 0.5,0.5 -k 5 -feed 500
//	cqp-client -addr 127.0.0.1:7171 -query 3 -kind predictive -region 0.4,0.4,0.6,0.6 -window 60,120
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cqp"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7171", "server address")
		queryID   = flag.Uint64("query", 1, "query identifier")
		kind      = flag.String("kind", "range", "query kind: range | knn | predictive")
		regionArg = flag.String("region", "0.4,0.4,0.6,0.6", "query region minx,miny,maxx,maxy (range, predictive)")
		focalArg  = flag.String("focal", "0.5,0.5", "kNN focal point x,y")
		k         = flag.Int("k", 3, "kNN cardinality")
		windowArg = flag.String("window", "60,120", "predictive future window t1,t2 (server-clock seconds)")
		feed      = flag.Int("feed", 0, "also simulate this many moving objects on a road network")
		seed      = flag.Int64("seed", 1, "seed for the simulated feed")
		commitEvr = flag.Duration("commit", 30*time.Second, "commit (checkpoint) period")
		statsEvr  = flag.Duration("stats", 0, "print server stats at this period (0 = off)")

		retryInitial  = flag.Duration("retry-initial", 500*time.Millisecond, "first reconnect backoff")
		retryMax      = flag.Duration("retry-max", 15*time.Second, "reconnect backoff ceiling")
		retryAttempts = flag.Int("retry-attempts", 0, "give up after this many reconnect attempts (0 = retry forever)")
	)
	flag.Parse()

	u := cqp.QueryUpdate{ID: cqp.QueryID(*queryID)}
	var err error
	switch *kind {
	case "range":
		u.Kind = cqp.Range
		u.Region, err = parseRegion(*regionArg)
	case "knn":
		u.Kind = cqp.KNN
		u.K = *k
		u.Focal, err = parsePoint(*focalArg)
	case "predictive":
		u.Kind = cqp.PredictiveRange
		if u.Region, err = parseRegion(*regionArg); err == nil {
			u.T1, u.T2, err = parseWindow(*windowArg)
		}
	default:
		err = fmt.Errorf("unknown query kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-client:", err)
		os.Exit(1)
	}
	c, err := cqp.DialOptions(*addr, cqp.ClientOptions{
		AutoReconnect: true,
		Retry: cqp.RetryPolicy{
			InitialBackoff: *retryInitial,
			MaxBackoff:     *retryMax,
			MaxAttempts:    *retryAttempts,
			Seed:           *seed,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-client:", err)
		os.Exit(1)
	}
	defer c.Close()

	q := u.ID
	if err := c.RegisterQuery(u); err != nil {
		fmt.Fprintln(os.Stderr, "cqp-client: register:", err)
		os.Exit(1)
	}
	switch u.Kind {
	case cqp.Range:
		fmt.Printf("subscribed: Q%d (range) over %v\n", q, u.Region)
	case cqp.KNN:
		fmt.Printf("subscribed: Q%d (knn) k=%d at %v\n", q, u.K, u.Focal)
	case cqp.PredictiveRange:
		fmt.Printf("subscribed: Q%d (predictive) over %v during [%g,%g]\n", q, u.Region, u.T1, u.T2)
	}

	if *feed > 0 {
		go runFeed(c, *feed, *seed)
	}

	commits := time.NewTicker(*commitEvr)
	defer commits.Stop()
	statsTick := make(<-chan time.Time)
	if *statsEvr > 0 {
		t := time.NewTicker(*statsEvr)
		defer t.Stop()
		statsTick = t.C
	}
	for {
		select {
		case <-statsTick:
			if err := c.RequestStats(); err != nil {
				fmt.Fprintln(os.Stderr, "cqp-client: stats:", err)
			}
		case ev, ok := <-c.Events():
			if !ok {
				return
			}
			switch ev.Kind {
			case cqp.EventUpdates:
				for _, u := range ev.Updates {
					fmt.Printf("t=%.1f %v\n", ev.Time, u)
				}
			case cqp.EventRecovered:
				fmt.Printf("t=%.1f recovered with %d updates\n", ev.Time, len(ev.Updates))
			case cqp.EventFullAnswer:
				ans, _ := c.Answer(ev.Query)
				fmt.Printf("t=%.1f full answer for Q%d: %v\n", ev.Time, ev.Query, ans)
			case cqp.EventCommitted:
				fmt.Printf("commit acknowledged for Q%d\n", ev.Query)
			case cqp.EventStats:
				st := ev.Stats
				fmt.Printf("server: %d objects, %d queries, %d steps, +%d/−%d updates, uptime %.0fs\n",
					st.Objects, st.Queries, st.Stats.Steps,
					st.Stats.PositiveUpdates, st.Stats.NegativeUpdates, st.Uptime)
			case cqp.EventDisconnected:
				// The client reconnects on its own with jittered backoff;
				// recovery (diff or full answer) follows automatically.
				if ev.Err != nil {
					fmt.Fprintln(os.Stderr, "cqp-client: disconnected:", ev.Err)
				} else {
					fmt.Fprintln(os.Stderr, "cqp-client: disconnected (connection closed by server)")
				}
			case cqp.EventReconnectFailed:
				fmt.Fprintln(os.Stderr, "cqp-client: reconnect attempts exhausted:", ev.Err)
				os.Exit(1)
			}
		case <-commits.C:
			if err := c.Commit(q); err != nil {
				fmt.Fprintln(os.Stderr, "cqp-client: commit:", err)
			}
		}
	}
}

// runFeed simulates network-constrained moving objects reporting through
// the same connection.
func runFeed(c *cqp.Client, n int, seed int64) {
	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Seed: seed})
	world := cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: n, Seed: seed})
	for i := 0; i < n; i++ {
		loc, _ := world.Object(i)
		c.ReportObject(cqp.ObjectUpdate{ID: cqp.ObjectID(i + 1), Kind: cqp.Moving, Loc: loc})
	}
	for range time.Tick(time.Second) {
		world.Advance(1)
		for i := 0; i < n; i++ {
			loc, _ := world.Object(i)
			// Report errors are transient (auto-reconnect heals the link);
			// keep feeding so the stream resumes after recovery.
			if c.ReportObject(cqp.ObjectUpdate{
				ID: cqp.ObjectID(i + 1), Kind: cqp.Moving, Loc: loc, T: world.Now(),
			}) != nil {
				break
			}
		}
	}
}

func parsePoint(s string) (cqp.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return cqp.Point{}, fmt.Errorf("point must be x,y, got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return cqp.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return cqp.Point{}, err
	}
	return cqp.Pt(x, y), nil
}

func parseWindow(s string) (t1, t2 float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("window must be t1,t2, got %q", s)
	}
	if t1, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, err
	}
	if t2, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, err
	}
	return t1, t2, nil
}

func parseRegion(s string) (cqp.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return cqp.Rect{}, fmt.Errorf("region must be minx,miny,maxx,maxy, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return cqp.Rect{}, fmt.Errorf("region coordinate %q: %v", p, err)
		}
		v[i] = f
	}
	return cqp.R(v[0], v[1], v[2], v[3]), nil
}
