package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cqp/internal/analysis"
	"cqp/internal/analysis/driver"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when invoking a vet tool (see cmd/go/internal/work: the
// unitchecker protocol). Fields we do not consume are listed so the
// decode stays strict about shape without being strict about content.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers cmd/go's `-V=full` probe. The build ID must
// change when the binary changes (it keys the vet result cache), so it
// is a content hash of the executable.
func printVersion() {
	prog := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, h.Sum(nil))
}

// unitcheckerMain handles one per-package vet invocation. Exit status 0
// means no findings, 2 means findings (printed to stderr) — the
// convention cmd/go expects from vet tools.
func unitcheckerMain(cfgFile string) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-lint:", err)
		return 1
	}
	// The suite exports no cross-package facts, but the protocol
	// requires the facts file to exist before cmd/go will cache the
	// result.
	defer func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}()
	if cfg.VetxOnly {
		return 0
	}

	// Lint scope is shipped code: drop _test.go files. The in-package
	// test variant then reduces to the plain package; the external
	// _test package reduces to nothing.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "cqp-lint:", err)
			return 1
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{Importer: imp}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "cqp-lint:", err)
		return 1
	}

	dcfg := &driver.Config{
		ModulePath: "cqp",
		Analyzers:  analysis.All(),
		Scope:      driver.DefaultScope(),
	}
	findings, err := dcfg.LintPackage(&driver.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &cfg, nil
}
