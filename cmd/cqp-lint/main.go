// Command cqp-lint runs the project's static-analysis suite (package
// cqp/internal/analysis) over module packages.
//
// Standalone:
//
//	cqp-lint [-checks determinism,maporder,...] [-list] [-json] ./...
//
// exits 1 when findings remain after //lint:allow filtering, printing
// each as file:line:col: [analyzer] message — or, under -json, as a
// JSON array of {file, line, col, analyzer, message} objects on stdout
// for editor and CI integration. Exit status is 0 for a clean tree, 1
// for findings, 2 for usage or load errors.
//
// As a vet tool it speaks the cmd/go unitchecker protocol, so the same
// binary plugs into the build cache:
//
//	go vet -vettool=$(which cqp-lint) ./...
//
// In that mode cmd/go hands the tool a JSON .cfg per package (file
// lists plus export data for every dependency) and expects diagnostics
// on stderr with exit status 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cqp/internal/analysis"
	"cqp/internal/analysis/driver"
)

func main() {
	// cmd/go probes vet tools with `-V=full` before anything else; a
	// lone .cfg argument is the per-package invocation that follows.
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go asks the tool for its flag schema; the suite takes no
		// per-run flags in vettool mode.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerMain(args[0]))
	}

	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cqp-lint [flags] ./... | ./dir ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modDir, err := findModuleDir()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-lint:", err)
		os.Exit(2)
	}
	cfg := &driver.Config{ModulePath: "cqp", ModuleDir: modDir}
	if *checks != "" {
		as, err := analysis.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqp-lint:", err)
			os.Exit(2)
		}
		cfg.Analyzers = as
	}
	findings, err := cfg.Run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqp-lint:", err)
		os.Exit(2)
	}
	for i := range findings {
		if r, err := filepath.Rel(modDir, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			findings[i].Pos.Filename = r
		}
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "cqp-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cqp-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the stable machine-readable finding shape; the struct
// keeps the output schema independent of driver.Finding's layout.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits findings as a JSON array — `[]`, never `null`, on a
// clean run, so consumers can iterate unconditionally.
func writeJSON(w *os.File, findings []driver.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// findModuleDir walks up from the working directory to the go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
