// Command cqp-load is the open-loop load driver for cqp-server: it
// fires object reports and query re-registrations at a fixed arrival
// rate over concurrent client sessions and reports delivery-latency
// percentiles (send → applied update), scheduling lag, and the server's
// shed/drop counters.
//
// With -addr it drives a running server; without it, it starts an
// in-process server (whose metrics then appear in the output), which is
// what the CI load-smoke job runs:
//
//	cqp-load -rate 200 -duration 1s -min-delivered 1
//
// Against a real deployment:
//
//	cqp-server -addr :7171 -interval 100ms &
//	cqp-load -addr 127.0.0.1:7171 -rate 1000 -duration 30s -sessions 16
//
// The process exits nonzero if any session fails mid-run or fewer than
// -min-delivered updates were measured, so a passing exit code means
// the full report→evaluate→stream→apply loop ran.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cqp/internal/loadgen"
	"cqp/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server to drive (empty = start an in-process server)")
		rate     = flag.Float64("rate", 100, "offered arrival rate, reports/sec")
		duration = flag.Duration("duration", time.Second, "paced phase length")
		sessions = flag.Int("sessions", 4, "concurrent client sessions")
		objects  = flag.Int("objects", 500, "moving object population")
		queries  = flag.Int("queries", 50, "continuous query population")
		scenario = flag.String("scenario", "uniform", "movement preset: uniform|hotspot|fleet")
		side     = flag.Float64("query-side", 0.05, "query square side length")
		moveFrac = flag.Float64("query-move-frac", 0.05, "fraction of paced events that move a query")
		scale    = flag.Float64("time-scale", 100, "scenario seconds per wall second")
		seed     = flag.Int64("seed", 1, "random seed")

		eval   = flag.Duration("eval", 10*time.Millisecond, "in-process server evaluation period")
		grid   = flag.Int("grid", 16, "in-process server grid cells per axis")
		outbox = flag.Int("outbox", 0, "in-process server per-session outbox depth (0 = server default)")
		policy = flag.String("outbox-policy", "shed", "in-process server full-outbox behavior: shed|drop-newest")

		converge     = flag.Duration("converge", 10*time.Second, "max time to wait for quiescence after the paced phase")
		minDelivered = flag.Uint64("min-delivered", 0, "exit nonzero unless at least this many deliveries were measured")
		jsonOut      = flag.Bool("json", true, "print the result as JSON (false = one human line)")
	)
	flag.Parse()

	var pol server.OutboxPolicy
	switch *policy {
	case "shed":
		pol = server.ShedSession
	case "drop-newest":
		pol = server.DropNewest
	default:
		fmt.Fprintf(os.Stderr, "cqp-load: unknown -outbox-policy %q (shed|drop-newest)\n", *policy)
		os.Exit(2)
	}

	h, err := loadgen.New(loadgen.Config{
		Addr:          *addr,
		Rate:          *rate,
		Duration:      *duration,
		Sessions:      *sessions,
		Objects:       *objects,
		Queries:       *queries,
		Scenario:      *scenario,
		QuerySide:     *side,
		QueryMoveFrac: *moveFrac,
		TimeScale:     *scale,
		Seed:          *seed,
		EvalInterval:  *eval,
		GridN:         *grid,
		OutboxSize:    *outbox,
		OutboxPolicy:  pol,
		Logger:        log.New(os.Stderr, "cqp-load: server: ", 0),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqp-load: %v\n", err)
		os.Exit(1)
	}
	defer h.Close()

	res, runErr := h.Run()
	h.Converge(*converge)
	res = h.Result(res.Elapsed)

	if *jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqp-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("%s: offered %.0f/s achieved %.0f/s, %d delivered, p50 %v p95 %v p99 %v, max lag %v, sheds %d dropped %d\n",
			res.Scenario, res.Offered, res.Achieved, res.Delivered,
			res.P50, res.P95, res.P99, res.MaxLag, res.Sheds, res.Dropped)
	}
	if err := h.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cqp-load: close: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "cqp-load: %v\n", runErr)
		os.Exit(1)
	}
	if res.Delivered < *minDelivered {
		fmt.Fprintf(os.Stderr, "cqp-load: only %d deliveries measured (need %d)\n", res.Delivered, *minDelivered)
		os.Exit(1)
	}
}
