package cqp_test

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example with small parameters,
// asserting clean exits and a recognizable line of output. It is the
// repository's end-to-end smoke test; skip with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want string // substring expected on stdout
	}{
		{"quickstart", nil, "(Q1, +O1)"},
		{"trafficmonitor", []string{"-objects", "300", "-queries", "60", "-ticks", "3"}, "complete KB"},
		{"fleetknn", []string{"-taxis", "80", "-customers", "2", "-ticks", "3"}, "final assignments:"},
		{"predictive", nil, "predicted intruders: [1 3]"},
		{"outofsync", nil, "recovery diff (3 tuples)"},
		{"timetravel", nil, "FUTURE"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + tc.name}, tc.args...)
			cmd := exec.Command("go", args...)
			var out, errb bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &errb
			if err := cmd.Run(); err != nil {
				t.Fatalf("example failed: %v\nstderr:\n%s", err, errb.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}
