package cqp_test

import (
	"io"
	"log"
	"testing"
	"time"

	"cqp"
)

// TestPublicAPIEngine exercises the embeddable engine through the root
// package exactly as the README quick start does.
func TestPublicAPIEngine(t *testing.T) {
	e, err := cqp.NewEngine(cqp.Options{Bounds: cqp.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	e.ReportObject(cqp.ObjectUpdate{ID: 1, Kind: cqp.Moving, Loc: cqp.Pt(10, 10)})
	e.ReportQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.Range, Region: cqp.R(5, 5, 15, 15)})
	updates := e.Step(0)
	if len(updates) != 1 || !updates[0].Positive {
		t.Fatalf("updates = %v", updates)
	}

	// Client-side replay helper.
	answer := map[cqp.ObjectID]struct{}{}
	cqp.ApplyUpdates(answer, updates, 1)
	if _, ok := answer[1]; !ok {
		t.Fatal("replayed answer missing object")
	}
	if cqp.ChecksumIDs([]cqp.ObjectID{1}) == 0 {
		t.Fatal("checksum of non-empty set should be non-zero")
	}
	if cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 1, 1)}) == nil {
		t.Fatal("MustNewEngine returned nil")
	}
}

// TestPublicAPIKinds pins the re-exported enum values to their String
// forms so facade and core cannot drift apart.
func TestPublicAPIKinds(t *testing.T) {
	if cqp.Stationary.String() != "stationary" || cqp.Moving.String() != "moving" ||
		cqp.Predictive.String() != "predictive" {
		t.Error("object kinds mis-exported")
	}
	if cqp.Range.String() != "range" || cqp.KNN.String() != "knn" ||
		cqp.PredictiveRange.String() != "predictive-range" {
		t.Error("query kinds mis-exported")
	}
}

// TestPublicAPIWorkload exercises the generator surface.
func TestPublicAPIWorkload(t *testing.T) {
	net := cqp.GenerateRoadNetwork(cqp.RoadNetworkConfig{Lattice: 8, Seed: 3})
	if net.NumNodes() != 64 {
		t.Fatalf("NumNodes = %d", net.NumNodes())
	}
	if cqp.SideRoad.String() != "side" || cqp.MainRoad.String() != "main" ||
		cqp.HighwayRoad.String() != "highway" {
		t.Error("road classes mis-exported")
	}
	world, err := cqp.NewWorld(cqp.WorldConfig{Net: net, NumObjects: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wl := cqp.NewWorkload(world, 5, 0.05, 3)
	e := cqp.MustNewEngine(cqp.Options{Bounds: cqp.R(0, 0, 1, 1), GridN: 8})
	wl.Bootstrap(e)
	e.Step(0)
	if e.NumObjects() != 10 || e.NumQueries() != 5 {
		t.Fatalf("population: %d/%d", e.NumObjects(), e.NumQueries())
	}
	if cqp.MustNewWorld(cqp.WorldConfig{Net: net, NumObjects: 1, Seed: 1}) == nil {
		t.Fatal("MustNewWorld returned nil")
	}
}

// TestPublicAPINetwork exercises the TCP surface end to end through the
// facade.
func TestPublicAPINetwork(t *testing.T) {
	srv, err := cqp.Listen("127.0.0.1:0", cqp.ServerConfig{
		Engine:   cqp.Options{Bounds: cqp.R(0, 0, 10, 10), GridN: 8},
		Interval: 5 * time.Millisecond,
		Logger:   log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := cqp.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ReportObject(cqp.ObjectUpdate{ID: 1, Kind: cqp.Moving, Loc: cqp.Pt(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(cqp.QueryUpdate{ID: 1, Kind: cqp.Range, Region: cqp.R(0, 0, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-c.Events():
			if ev.Kind == cqp.EventUpdates && len(ev.Updates) == 1 {
				ans, ok := c.Answer(1)
				if !ok || len(ans) != 1 || ans[0] != 1 {
					t.Fatalf("answer = %v %v", ans, ok)
				}
				return
			}
		case <-deadline:
			t.Fatal("no update event")
		}
	}
}
