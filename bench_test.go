// Benchmarks regenerating the paper's evaluation (Figure 5a/5b) and the
// ablation experiments documented in DESIGN.md. Each benchmark prints the
// measured quantities as custom metrics (KB/evaluation, ratios, ms/step)
// so that `go test -bench=. -benchmem` reproduces the tables recorded in
// EXPERIMENTS.md. The cqp-bench command runs the same harnesses at larger
// scale with pretty-printed rows.
//
// Benchmark scale is deliberately below the paper's 100K×100K so the
// whole suite runs in minutes; the shapes (who wins, growth direction,
// crossovers) are scale-stable, and `cqp-bench -paper-scale` reproduces
// the full-size run.
package cqp_test

import (
	"fmt"
	"testing"

	"cqp/internal/bench"
)

// benchScale keeps the testing.B workloads laptop-sized. Under -short
// (the CI bench-smoke job) it shrinks further to a compile-and-run
// guard: every harness executes, none dominates the job's wall clock.
func benchScale() bench.Fig5Config {
	cfg := bench.Fig5Config{
		Objects: 4000,
		Queries: 4000,
		Ticks:   3,
		Seed:    1,
	}
	if testing.Short() {
		cfg.Objects, cfg.Queries, cfg.Ticks = 500, 500, 1
	}
	return cfg.WithDefaults()
}

// BenchmarkFig5aAnswerSize reproduces Figure 5(a): the per-evaluation
// answer traffic of the incremental stream versus complete-answer
// retransmission as the object update rate sweeps 10%–100%.
func BenchmarkFig5aAnswerSize(b *testing.B) {
	for _, rate := range []float64{0.1, 0.3, 0.5, 0.7, 1.0} {
		b.Run(fmt.Sprintf("rate=%.0f%%", rate*100), func(b *testing.B) {
			cfg := benchScale()
			cfg.Rate = rate
			b.ReportAllocs()
			var r bench.Fig5Result
			for i := 0; i < b.N; i++ {
				r = bench.RunFig5Point(cfg)
			}
			b.ReportMetric(r.IncrementalKB, "incKB/eval")
			b.ReportMetric(r.CompleteKB, "compKB/eval")
			b.ReportMetric(100*r.IncrementalKB/r.CompleteKB, "inc/comp-%")
		})
	}
}

// BenchmarkFig5bAnswerSize reproduces Figure 5(b): answer traffic as the
// query side length sweeps 0.01–0.04 at a fixed 30% update rate.
func BenchmarkFig5bAnswerSize(b *testing.B) {
	for _, side := range []float64{0.01, 0.02, 0.03, 0.04} {
		b.Run(fmt.Sprintf("side=%.3f", side), func(b *testing.B) {
			cfg := benchScale()
			cfg.QuerySide = side
			b.ReportAllocs()
			var r bench.Fig5Result
			for i := 0; i < b.N; i++ {
				r = bench.RunFig5Point(cfg)
			}
			b.ReportMetric(r.IncrementalKB, "incKB/eval")
			b.ReportMetric(r.CompleteKB, "compKB/eval")
			b.ReportMetric(100*r.IncrementalKB/r.CompleteKB, "inc/comp-%")
		})
	}
}

// BenchmarkAblationShared measures Ablation 1/2: CPU per evaluation of
// the shared incremental engine against snapshot re-evaluation as the
// number of concurrent queries grows.
func BenchmarkAblationShared(b *testing.B) {
	for _, q := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("queries=%d", q), func(b *testing.B) {
			cfg := benchScale()
			cfg.Queries = q
			b.ReportAllocs()
			var r bench.StrategyResult
			for i := 0; i < b.N; i++ {
				r = bench.RunStrategyComparison(cfg, false)
			}
			b.ReportMetric(r.IncrementalMillis, "inc-ms/eval")
			b.ReportMetric(r.SnapshotMillis, "snap-ms/eval")
			b.ReportMetric(r.SnapshotMillis/r.IncrementalMillis, "speedup")
		})
	}
}

// BenchmarkAblationQIndex measures Ablation 4: the shared grid against
// the Q-index baseline on stationary queries.
func BenchmarkAblationQIndex(b *testing.B) {
	cfg := benchScale()
	b.ReportAllocs()
	var r bench.StrategyResult
	for i := 0; i < b.N; i++ {
		r = bench.RunStrategyComparison(cfg, true)
	}
	b.ReportMetric(r.IncrementalMillis, "inc-ms/eval")
	b.ReportMetric(r.QIndexMillis, "qindex-ms/eval")
	b.ReportMetric(r.QIndexMillis/r.IncrementalMillis, "speedup")
}

// BenchmarkAblationGridSize measures Ablation 3: evaluation cost across
// grid granularities.
func BenchmarkAblationGridSize(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("grid=%dx%d", n, n), func(b *testing.B) {
			cfg := benchScale()
			cfg.GridN = n
			b.ReportAllocs()
			var r bench.Fig5Result
			for i := 0; i < b.N; i++ {
				r = bench.RunFig5Point(cfg)
			}
			b.ReportMetric(r.StepMillis, "ms/eval")
		})
	}
}

// BenchmarkAblationRecovery measures Ablation 5: the traffic of
// incremental out-of-sync recovery against a complete-answer resend for
// increasing disconnection lengths.
func BenchmarkAblationRecovery(b *testing.B) {
	cfg := benchScale()
	cfg.Queries = 1000
	b.ReportAllocs()
	var rs []bench.RecoveryResult
	for i := 0; i < b.N; i++ {
		rs = bench.RunRecovery(cfg, []int{1, 10, 50})
	}
	for _, r := range rs {
		b.ReportMetric(r.DiffKB*1024, fmt.Sprintf("diffB@%d", r.MissedTicks))
		b.ReportMetric(r.FullKB*1024, fmt.Sprintf("fullB@%d", r.MissedTicks))
	}
}

// BenchmarkAblationPredictive measures Ablation 7: predictive-query
// evaluation on the shared grid (incremental) against TPR-tree
// re-evaluation.
func BenchmarkAblationPredictive(b *testing.B) {
	cfg := benchScale()
	b.ReportAllocs()
	var r bench.PredictiveResult
	for i := 0; i < b.N; i++ {
		r = bench.RunPredictiveComparison(cfg)
	}
	b.ReportMetric(r.IncrementalMillis, "inc-ms/eval")
	b.ReportMetric(r.TPRMillis, "tpr-ms/eval")
	b.ReportMetric(r.Updates, "updates/eval")
}

// BenchmarkAblationBulk measures Ablation 6: bulk batch evaluation
// against one evaluation per report.
func BenchmarkAblationBulk(b *testing.B) {
	cfg := benchScale()
	b.ReportAllocs()
	var rs []bench.BulkResult
	for i := 0; i < b.N; i++ {
		rs = bench.RunBulk(cfg, []int{1000})
	}
	for _, r := range rs {
		b.ReportMetric(r.BulkMillis, "bulk-ms")
		b.ReportMetric(r.OneByOneMS, "single-ms")
		b.ReportMetric(r.OneByOneMS/r.BulkMillis, "speedup")
	}
}

// BenchmarkAblationParallel measures Ablation 8: the gather-phase
// parallelism sweep at full update rate.
func BenchmarkAblationParallel(b *testing.B) {
	cfg := benchScale()
	cfg.Rate = 1.0
	b.ReportAllocs()
	var times []float64
	for i := 0; i < b.N; i++ {
		times = bench.RunParallelSweep(cfg, []int{1, 4})
	}
	b.ReportMetric(times[0], "serial-ms/eval")
	b.ReportMetric(times[1], "par4-ms/eval")
	b.ReportMetric(times[0]/times[1], "speedup")
}
