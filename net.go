package cqp

import (
	"cqp/internal/client"
	"cqp/internal/server"
)

// Network layer: the location-aware TCP server and its client library.
type (
	// Server is a running location-aware server.
	Server = server.Server
	// ServerConfig parameterizes Listen.
	ServerConfig = server.Config
	// Client is a connection to a location-aware server.
	Client = client.Client
	// Event is a client-side notification (updates, recovery, full
	// answer, disconnection, commit acknowledgment).
	Event = client.Event
	// EventKind discriminates Events.
	EventKind = client.EventKind
	// OutboxPolicy selects a session's full-outbox behavior.
	OutboxPolicy = server.OutboxPolicy
)

// Full-outbox behaviors for ServerConfig.OutboxPolicy.
const (
	// ShedSession disconnects a client whose outbox is full; it heals
	// later through the wakeup recovery protocol.
	ShedSession = server.ShedSession
	// DropNewest drops the overflowing frame and keeps the session; the
	// gap heals at the client's next commit-checksum exchange.
	DropNewest = server.DropNewest
)

// Client event kinds.
const (
	// EventUpdates is a routine incremental batch.
	EventUpdates = client.EventUpdates
	// EventRecovered is the diff completing an out-of-sync recovery.
	EventRecovered = client.EventRecovered
	// EventFullAnswer is a complete answer (recovery fallback).
	EventFullAnswer = client.EventFullAnswer
	// EventDisconnected reports a dead connection.
	EventDisconnected = client.EventDisconnected
	// EventCommitted acknowledges a commit.
	EventCommitted = client.EventCommitted
	// EventStats carries a server-statistics response.
	EventStats = client.EventStats
	// EventReconnectFailed reports exhausted automatic reconnection.
	EventReconnectFailed = client.EventReconnectFailed
)

// ServerStats is the server-side view returned by Client.RequestStats.
type ServerStats = client.ServerStats

// ClientOptions parameterizes DialOptions (automatic reconnection,
// retry backoff, read deadlines, custom dialers).
type ClientOptions = client.Options

// RetryPolicy shapes the jittered exponential backoff of automatic
// client reconnection.
type RetryPolicy = client.RetryPolicy

// Listen starts a location-aware server on addr.
func Listen(addr string, cfg ServerConfig) (*Server, error) { return server.Listen(addr, cfg) }

// Dial connects a client to a running server.
func Dial(addr string) (*Client, error) { return client.Dial(addr) }

// DialOptions connects a client with explicit lifecycle options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	return client.DialOptions(addr, opts)
}
