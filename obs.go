package cqp

import (
	"net/http"
	"time"

	"cqp/internal/obs"
)

// Observability layer (internal/obs): an allocation-free metrics
// registry plus clock-injected step tracing. Pass a registry through
// Options.Metrics (engine tier), ServerConfig.Metrics (all tiers behind
// a server), or ClientOptions.Metrics (subscriber library), then serve
// it with MetricsHandler or snapshot it directly.
type (
	// MetricsRegistry names and holds counters, gauges, and histograms
	// and renders deterministic snapshots.
	MetricsRegistry = obs.Registry
	// Clock is an injected monotonic nanosecond timestamp source; the
	// deterministic engine packages never read the wall clock directly.
	Clock = obs.Clock
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler serves a registry over HTTP: a JSON snapshot at
// /metrics plus net/http/pprof under /debug/pprof/. It is what
// cqp-server's -metrics flag mounts.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// MetricsLogLoop periodically logs compact JSON snapshots of r through
// logf until stop is closed.
func MetricsLogLoop(r *MetricsRegistry, interval time.Duration, logf func(format string, args ...any), stop <-chan struct{}) {
	obs.LogLoop(r, interval, logf, stop)
}

// WallClock is the process wall clock as a Clock, for wiring engine
// latency histograms outside a server (the server injects it itself).
func WallClock() int64 { return obs.WallClock() }
