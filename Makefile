# Development targets for the cqp reproduction.

GO ?= go

.PHONY: all build test race chaos chaos-cluster fuzz cover bench bench-full bench-shard bench-server soak load-smoke vet lint fmt examples clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The seeded fault-injection convergence test (see DESIGN.md, "Failure
# model & recovery").
chaos:
	$(GO) test -race -run TestChaosConvergence -count=1 -v ./internal/server/

# The multi-process cluster's fault drills under the race detector:
# differential bit-identity against the in-process engine, scripted
# worker murders (including real SIGKILLed processes), and seeded
# faultnet storms, all required to heal completely (see DESIGN.md,
# "Cluster failure model").
chaos-cluster:
	$(GO) test -race -count=1 -run 'TestDifferential|TestChaos|TestExec' -v ./internal/cluster/

# Short fuzz passes over the wire protocol: hostile input to the
# decoder, then structured messages through the encode→decode→encode
# round trip.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/wire/

# Coverage with a committed floor: fails when total statement coverage
# drops below COVER_BASELINE. Raise the baseline when coverage durably
# improves; never lower it to make a PR pass.
cover:
	$(GO) test ./... -coverprofile=cover.out
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	base=$$(cat COVER_BASELINE); \
	awk -v t="$$total" -v b="$$base" 'BEGIN { \
		if (t+0 < b+0) { printf "FAIL: coverage %.1f%% is below the committed baseline %.1f%% (COVER_BASELINE)\n", t, b; exit 1 } \
		printf "OK: coverage %.1f%% meets the baseline %.1f%%\n", t, b }'

vet:
	$(GO) vet ./...

# The project's own static-analysis suite (see DESIGN.md, "Mechanically
# enforced invariants"). Exits nonzero on any finding not covered by a
# //lint:allow annotation.
lint:
	$(GO) run ./cmd/cqp-lint ./...

fmt:
	gofmt -l -w .

# The evaluation benchmarks (laptop scale).
bench:
	$(GO) test -bench=. -benchmem .

# The full experiment tables (see EXPERIMENTS.md).
bench-full:
	$(GO) run ./cmd/cqp-bench -exp all | tee bench_results.txt

# The shard-scaling sweep: router microbenchmarks (static and
# repartitioning), then the full step-latency-vs-shard-count table,
# which rewrites BENCH_shard.json (see EXPERIMENTS.md).
bench-shard:
	$(GO) test -bench=BenchmarkShard -benchmem ./internal/shard/ | tee -a bench_results.txt
	$(GO) run ./cmd/cqp-bench -exp shard | tee -a bench_results.txt

# The core hot-path benchmarks: the grid/engine microbenchmarks with
# allocation reporting, then the steady-state Step sweep, which appends
# a labelled run to BENCH_core.json (the perf-regression trajectory; see
# EXPERIMENTS.md). Override LABEL to tag the run.
LABEL ?= dev
bench-core:
	$(GO) test -bench=. -benchmem ./internal/grid/ ./internal/core/ | tee -a bench_results.txt
	$(GO) run ./cmd/cqp-bench -exp core -label "$(LABEL)" | tee -a bench_results.txt

# The sustained soak: minutes-scale open-loop load over the full wire
# stack under the race detector, asserting zero lost updates, bounded
# delivery p99, and bit-identical answers against a direct engine
# replay (see internal/loadgen/soak_test.go). CI runs the same test in
# its milliseconds-scale smoke form via plain `go test`.
soak:
	$(GO) test -race -count=1 -run TestSoak -v ./internal/loadgen/ -args -soak

# The CI load smoke: one second of low-rate open-loop load through
# cqp-load (in-process server), race-clean, requiring at least one
# measured delivery and a clean shutdown.
load-smoke:
	$(GO) run -race ./cmd/cqp-load -rate 200 -duration 1s -min-delivered 1 -json=false

# The server-capacity sweep: delivery-latency percentiles vs. offered
# rate over the full wire stack, plus the shed-point probe; appends a
# labelled run to BENCH_server.json (see EXPERIMENTS.md). Override
# LABEL and RATES to tag or reshape the run.
RATES ?= 200,400,800
bench-server:
	$(GO) run ./cmd/cqp-bench -exp server -label "$(LABEL)" -rates "$(RATES)" | tee -a bench_results.txt

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/trafficmonitor -objects 1000 -queries 200 -ticks 5
	$(GO) run ./examples/fleetknn -taxis 150 -customers 3 -ticks 5
	$(GO) run ./examples/predictive
	$(GO) run ./examples/outofsync
	$(GO) run ./examples/timetravel

clean:
	rm -f cover.out test_output.txt bench_output.txt
