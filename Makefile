# Development targets for the cqp reproduction.

GO ?= go

.PHONY: all build test race chaos fuzz cover bench bench-full vet lint fmt examples clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The seeded fault-injection convergence test (see DESIGN.md, "Failure
# model & recovery").
chaos:
	$(GO) test -race -run TestChaosConvergence -count=1 -v ./internal/server/

# Short fuzz passes over the wire protocol: hostile input to the
# decoder, then structured messages through the encode→decode→encode
# round trip.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/wire/

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

vet:
	$(GO) vet ./...

# The project's own static-analysis suite (see DESIGN.md, "Mechanically
# enforced invariants"). Exits nonzero on any finding not covered by a
# //lint:allow annotation.
lint:
	$(GO) run ./cmd/cqp-lint ./...

fmt:
	gofmt -l -w .

# The evaluation benchmarks (laptop scale).
bench:
	$(GO) test -bench=. -benchmem .

# The full experiment tables (see EXPERIMENTS.md).
bench-full:
	$(GO) run ./cmd/cqp-bench -exp all | tee bench_results.txt

# The core hot-path benchmarks: the grid/engine microbenchmarks with
# allocation reporting, then the steady-state Step sweep, which appends
# a labelled run to BENCH_core.json (the perf-regression trajectory; see
# EXPERIMENTS.md). Override LABEL to tag the run.
LABEL ?= dev
bench-core:
	$(GO) test -bench=. -benchmem ./internal/grid/ ./internal/core/ | tee -a bench_results.txt
	$(GO) run ./cmd/cqp-bench -exp core -label "$(LABEL)" | tee -a bench_results.txt

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/trafficmonitor -objects 1000 -queries 200 -ticks 5
	$(GO) run ./examples/fleetknn -taxis 150 -customers 3 -ticks 5
	$(GO) run ./examples/predictive
	$(GO) run ./examples/outofsync
	$(GO) run ./examples/timetravel

clean:
	rm -f cover.out test_output.txt bench_output.txt
